//! The no-partitioning hash join baseline (Blanas et al., discussed in
//! the paper's related work): build one global hash table over R, probe
//! with S. Simple and synchronisation-free for a read-only probe, but the
//! table does not fit in cache for large R — the contrast that motivates
//! partitioned joins (Section 3.3).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use fpart_types::{Relation, Tuple};

use crate::buildprobe::BuildProbeReport;
use crate::hashtable::BucketChainTable;
use crate::radix::JoinResult;

/// Execute a non-partitioned hash join: single-threaded build (the
/// classic variant), multi-threaded probe over chunks of S.
pub fn no_partition_join<T: Tuple>(
    r: &Relation<T>,
    s: &Relation<T>,
    threads: usize,
) -> (JoinResult, BuildProbeReport) {
    let t0 = Instant::now();
    let table = BucketChainTable::build(r.tuples().iter().copied(), 0);
    let threads = threads.max(1);

    let chunk_size = s.len().div_ceil(threads).max(1);
    let cursor = AtomicUsize::new(0);
    let worker = || {
        let mut matches = 0u64;
        let mut checksum = 0u64;
        loop {
            let start = cursor.fetch_add(chunk_size, Ordering::Relaxed);
            if start >= s.len() {
                break;
            }
            let end = (start + chunk_size).min(s.len());
            for s_t in &s.tuples()[start..end] {
                matches += table.probe(s_t.key(), |r_t| {
                    checksum = checksum
                        .wrapping_add(r_t.payload_word())
                        .wrapping_add(s_t.payload_word());
                }) as u64;
            }
        }
        (matches, checksum)
    };

    let (matches, checksum) = if threads == 1 {
        worker()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
            handles.into_iter().fold((0u64, 0u64), |acc, h| {
                let (m, c) = h.join().expect("probe worker");
                (acc.0 + m, acc.1.wrapping_add(c))
            })
        })
    };

    let report = BuildProbeReport {
        matches,
        checksum,
        wall: t0.elapsed(),
        threads,
    };
    (JoinResult { matches, checksum }, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buildprobe::reference_join;
    use crate::radix::CpuRadixJoin;
    use fpart_datagen::WorkloadId;
    use fpart_hash::PartitionFn;
    use fpart_types::Tuple8;

    #[test]
    fn agrees_with_reference_and_radix_join() {
        let (r, s) = WorkloadId::C.spec().row_relations::<Tuple8>(0.00005, 2);
        let (result, _) = no_partition_join(&r, &s, 2);
        let (m, c) = reference_join(r.tuples(), s.tuples());
        assert_eq!((result.matches, result.checksum), (m, c));

        let (radix_result, _) =
            CpuRadixJoin::new(PartitionFn::Murmur { bits: 5 }, 2).execute(&r, &s);
        assert_eq!(result, radix_result);
    }

    #[test]
    fn single_and_multi_threaded_agree() {
        let (r, s) = WorkloadId::A.spec().row_relations::<Tuple8>(0.00002, 8);
        let (a, _) = no_partition_join(&r, &s, 1);
        let (b, _) = no_partition_join(&r, &s, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_sides() {
        let empty = Relation::<Tuple8>::from_tuples(&[]);
        let some = Relation::<Tuple8>::from_keys(&[1, 2, 3]);
        assert_eq!(no_partition_join(&empty, &some, 2).0.matches, 0);
        assert_eq!(no_partition_join(&some, &empty, 2).0.matches, 0);
    }
}
