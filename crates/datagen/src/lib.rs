//! # fpart-datagen
//!
//! Workload generation for the reproduction of *"FPGA-based Data
//! Partitioning"* (SIGMOD 2017).
//!
//! Section 3.2 evaluates partitioning over four key distributions taken
//! from Richter et al.'s hashing study — linear, random, grid and reverse
//! grid — and Section 5.4 adds Zipf-skewed probe relations. Table 4 defines
//! the five workloads (A–E) used throughout the evaluation. This crate
//! generates all of them deterministically from a seed:
//!
//! * [`KeyDistribution`] — the four base distributions plus Zipf;
//! * [`zipf::ZipfSampler`] — an O(1)-per-sample rejection-inversion Zipf
//!   generator (no giant CDF tables, so 128 M-tuple relations are cheap);
//! * [`permute::FeistelPermutation`] — a seeded random bijection used to
//!   generate *unique* uniformly-random keys without a dedup set;
//! * [`workloads`] — Table 4 (A–E) with a scale knob for small machines.

#![warn(missing_docs)]

pub mod dist;
pub mod permute;
pub mod workloads;
pub mod zipf;

pub use dist::KeyDistribution;
pub use workloads::{Workload, WorkloadId};
