//! Join output materialisation.
//!
//! The evaluation (like the prior work it compares against) counts
//! matches and checksums payloads; a database must also *materialise*
//! output tuples. Two paths matter for this reproduction:
//!
//! * [`materialize_join`] — produce `(key, r_payload, s_payload)` rows
//!   from partitioned inputs (RID mode: payloads travel with the tuples);
//! * [`materialize_join_vrid`] — the column-store path of Section 5.2:
//!   after VRID partitioning the tuples carry *positions*, and "the real
//!   tuple can be materialized using the VRIDs to associate keys with
//!   their payloads … an additional cost that does not occur in RID
//!   mode" — this function is that additional cost, made explicit and
//!   measurable.

use std::sync::atomic::{AtomicUsize, Ordering};

use fpart_types::{ColumnRelation, Key, PartitionedRelation, Tuple};

use crate::hashtable::BucketChainTable;

/// One materialised join output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinedRow<K> {
    /// The join key.
    pub key: K,
    /// Payload word of the build-side tuple.
    pub r_payload: u64,
    /// Payload word of the probe-side tuple.
    pub s_payload: u64,
}

/// Materialise the join of two partitioned relations (RID-mode payloads).
/// Threads claim partitions; each appends to a private vector, and the
/// results are concatenated partition-ordered.
pub fn materialize_join<T: Tuple>(
    r: &PartitionedRelation<T>,
    s: &PartitionedRelation<T>,
    partition_bits: u32,
    threads: usize,
) -> Vec<JoinedRow<T::K>> {
    assert_eq!(r.num_partitions(), s.num_partitions(), "fan-out mismatch");
    let parts = r.num_partitions();
    let threads = threads.clamp(1, parts.max(1));
    let cursor = AtomicUsize::new(0);

    let worker = || {
        let mut rows: Vec<(usize, Vec<JoinedRow<T::K>>)> = Vec::new();
        loop {
            let p = cursor.fetch_add(1, Ordering::Relaxed);
            if p >= parts {
                break;
            }
            let table = BucketChainTable::build(r.partition_tuples(p), partition_bits);
            if table.is_empty() {
                continue;
            }
            let mut out = Vec::new();
            for s_t in s.partition_tuples(p) {
                table.probe(s_t.key(), |r_t| {
                    out.push(JoinedRow {
                        key: s_t.key(),
                        r_payload: r_t.payload_word(),
                        s_payload: s_t.payload_word(),
                    });
                });
            }
            rows.push((p, out));
        }
        rows
    };

    let mut all: Vec<(usize, Vec<JoinedRow<T::K>>)> = if threads == 1 {
        worker()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("materialize worker"))
                .collect()
        })
    };
    // Deterministic output order: by partition id.
    all.sort_unstable_by_key(|(p, _)| *p);
    all.into_iter().flat_map(|(_, v)| v).collect()
}

/// Materialise a VRID-mode join: the partitioned tuples carry positions
/// into the original column relations; the real payloads are fetched by
/// position — the late-materialisation cost of Section 5.2.
pub fn materialize_join_vrid<T: Tuple>(
    r_parts: &PartitionedRelation<T>,
    s_parts: &PartitionedRelation<T>,
    r_cols: &ColumnRelation<T>,
    s_cols: &ColumnRelation<T>,
    partition_bits: u32,
    threads: usize,
) -> Vec<JoinedRow<T::K>> {
    let rows = materialize_join(r_parts, s_parts, partition_bits, threads);
    rows.into_iter()
        .map(|row| JoinedRow {
            key: row.key,
            // The payload words are VRIDs: dereference them.
            r_payload: r_cols.payloads()[row.r_payload as usize],
            s_payload: s_cols.payloads()[row.s_payload as usize],
        })
        .collect()
}

/// Order-insensitive checksum over materialised rows, comparable with
/// [`crate::buildprobe::BuildProbeReport::checksum`].
pub fn rows_checksum<K: Key>(rows: &[JoinedRow<K>]) -> u64 {
    rows.iter().fold(0u64, |acc, r| {
        acc.wrapping_add(r.r_payload).wrapping_add(r.s_payload)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buildprobe::build_probe_all;
    use fpart_cpu::CpuPartitioner;
    use fpart_datagen::dist::foreign_keys;
    use fpart_datagen::KeyDistribution;
    use fpart_hash::PartitionFn;
    use fpart_types::{Relation, Tuple8};

    fn setup(
        f: PartitionFn,
    ) -> (
        Relation<Tuple8>,
        Relation<Tuple8>,
        PartitionedRelation<Tuple8>,
        PartitionedRelation<Tuple8>,
    ) {
        let r_keys: Vec<u32> = KeyDistribution::Random.generate_keys(1500, 2);
        let s_keys = foreign_keys(&r_keys, 4000, 3);
        let r = Relation::from_keys(&r_keys);
        let s = Relation::from_keys(&s_keys);
        let p = CpuPartitioner::new(f, 2);
        let (rp, _) = p.partition(&r);
        let (sp, _) = p.partition(&s);
        (r, s, rp, sp)
    }

    #[test]
    fn rows_match_counting_join() {
        let f = PartitionFn::Murmur { bits: 5 };
        let (_, s, rp, sp) = setup(f);
        let rows = materialize_join(&rp, &sp, f.bits(), 2);
        let counted = build_probe_all(&rp, &sp, f.bits(), 2);
        assert_eq!(rows.len() as u64, counted.matches);
        assert_eq!(rows_checksum(&rows), counted.checksum);
        assert_eq!(rows.len(), s.len(), "FK join");
        // Every row's key must have come from the probe side.
        for row in &rows {
            assert_eq!(
                f.partition_of(row.key),
                f.partition_of(row.key),
                "self-consistent"
            );
        }
    }

    #[test]
    fn thread_counts_agree_up_to_order() {
        let f = PartitionFn::Murmur { bits: 4 };
        let (_, _, rp, sp) = setup(f);
        let mut a = materialize_join(&rp, &sp, f.bits(), 1);
        let mut b = materialize_join(&rp, &sp, f.bits(), 4);
        let key = |r: &JoinedRow<u32>| (r.key, r.r_payload, r.s_payload);
        a.sort_unstable_by_key(key);
        b.sort_unstable_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn vrid_materialisation_restores_column_payloads() {
        // Column relations with payloads that are NOT the row id, so a
        // missing dereference is caught.
        let r_keys: Vec<u32> = KeyDistribution::Random.generate_keys(800, 7);
        let s_keys = foreign_keys(&r_keys, 2000, 8);
        let r_payloads: Vec<u64> = (0..r_keys.len() as u64).map(|i| i * 1000 + 7).collect();
        let s_payloads: Vec<u64> = (0..s_keys.len() as u64).map(|i| i * 1000 + 13).collect();
        let r_cols = ColumnRelation::<Tuple8>::from_columns(&r_keys, &r_payloads);
        let s_cols = ColumnRelation::<Tuple8>::from_columns(&s_keys, &s_payloads);

        // VRID tuples: payload = position.
        let f = PartitionFn::Murmur { bits: 4 };
        let p = CpuPartitioner::new(f, 1);
        let r_vrid = Relation::<Tuple8>::from_keys(&r_keys); // payload = rid = position
        let s_vrid = Relation::<Tuple8>::from_keys(&s_keys);
        let (rp, _) = p.partition(&r_vrid);
        let (sp, _) = p.partition(&s_vrid);

        let rows = materialize_join_vrid(&rp, &sp, &r_cols, &s_cols, f.bits(), 2);
        assert_eq!(rows.len(), 2000);
        for row in &rows {
            assert_eq!(row.r_payload % 1000, 7, "r payload dereferenced");
            assert_eq!(row.s_payload % 1000, 13, "s payload dereferenced");
        }
    }

    #[test]
    fn empty_join_materialises_empty() {
        let f = PartitionFn::Radix { bits: 3 };
        let p = CpuPartitioner::new(f, 1);
        let (rp, _) = p.partition(&Relation::<Tuple8>::from_keys(&[1, 2, 3]));
        let (sp, _) = p.partition(&Relation::<Tuple8>::from_keys(&[100, 200]));
        let rows = materialize_join(&rp, &sp, f.bits(), 2);
        assert!(rows.is_empty());
    }
}
