//! The top-level partitioner (Figure 5) and its cycle-accurate driver.
//!
//! Data path per clock cycle, upstream to downstream:
//!
//! ```text
//! QPI reads ──▶ hash function modules (one per lane, 5-stage pipes)
//!           ──▶ first-stage FIFOs (their free slots throttle reads, §4.3)
//!           ──▶ write combiners (one per lane, Code 4)
//!           ──▶ combiner output FIFOs
//!           ──▶ write back (round-robin, base/count BRAMs)
//!           ──▶ last-stage FIFO ──▶ QPI writes
//! ```
//!
//! The driver evaluates the stages drain-first each cycle, which gives
//! register-transfer semantics: what a stage consumes this cycle is what
//! its upstream produced in earlier cycles. The QPI endpoint's token
//! bucket (calibrated on Figure 2) provides the only stalls; with an
//! unlimited endpoint the circuit moves exactly one line per cycle, which
//! the test-suite asserts — the paper's headline "fully pipelined, no
//! internal stalls" property.

use fpart_hash::PartitionFn;
use fpart_hwsim::{
    BramKind, FaultInjector, FaultPlan, Fifo, PageAllocator, PageTable, PassId, QpiConfig,
    QpiEndpoint, QpiStats,
};
use fpart_obs::{Ctr, ObsSnapshot, Recorder};
use fpart_types::{
    ColumnRelation, FpartError, Line, PartitionedRelation, Relation, Result, Tuple,
    CACHE_LINE_BYTES,
};

use crate::config::{InputMode, OutputMode, PartitionerConfig, SimFidelity};
use crate::hashmod::HashPipeline;
use crate::writeback::{AddressedLine, PartitionExtents, WriteBack};
use crate::writecomb::{CombinedLine, WriteCombiner};

/// The simulated FPGA partitioner.
///
/// # Examples
///
/// ```
/// use fpart_fpga::{FpgaPartitioner, InputMode, OutputMode, PartitionerConfig};
/// use fpart_hash::PartitionFn;
/// use fpart_types::{Relation, Tuple8};
///
/// let config = PartitionerConfig {
///     partition_fn: PartitionFn::Murmur { bits: 5 },
///     ..PartitionerConfig::paper_default(OutputMode::Hist, InputMode::Rid)
/// };
/// let keys: Vec<u32> = (0..4096).map(|i| i * 7 + 1).collect();
/// let rel = Relation::<Tuple8>::from_keys(&keys);
///
/// let (parts, report) = FpgaPartitioner::new(config).partition(&rel)?;
/// assert_eq!(parts.total_valid(), 4096);
/// // HIST mode ran two passes over the 512 input lines.
/// assert!(report.qpi.lines_read >= 1024);
/// println!("{:.0} Mtuples/s simulated", report.mtuples_per_sec());
/// # Ok::<(), fpart_types::FpartError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FpgaPartitioner {
    config: PartitionerConfig,
    qpi: QpiConfig,
    faults: Option<FaultInjector>,
}

/// Everything a partitioning run reports: cycle counts per phase, derived
/// time and throughput, link statistics, padding overhead.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Mode label, e.g. "HIST/RID".
    pub mode: String,
    /// Real (non-dummy) tuples partitioned.
    pub tuples: u64,
    /// Cycles spent in the histogram pass (0 in PAD mode).
    pub hist_cycles: u64,
    /// Cycles spent in the scatter pass including the flush.
    pub scatter_cycles: u64,
    /// FPGA clock this run was timed at (Hz).
    pub clock_hz: f64,
    /// QPI statistics summed over both passes.
    pub qpi: QpiStats,
    /// Dummy tuple slots written by the flush.
    pub padding_slots: u64,
    /// Highest first-stage FIFO occupancy observed.
    pub lane_fifo_high_water: usize,
    /// Forwarding-path hits across all combiners (1d, 2d).
    pub forward_hits: (u64, u64),
    /// Page-table translations performed.
    pub translations: u64,
    /// Page-table entry re-reads absorbed by transient lookup faults
    /// (non-zero only under fault injection; the retries are internal and
    /// never surface as errors).
    pub pt_retries: u64,
    /// Periodic samples of the scatter pass: `(cycle, lines_read,
    /// lines_written)` every [`TIMELINE_INTERVAL`] cycles — lets callers
    /// plot link utilisation over the run (warm-up, steady state, flush).
    pub timeline: Vec<(u64, u64, u64)>,
    /// Endpoint-cache hits and misses for the scatter pass's reads. The
    /// partitioner streams, so the 128 KB two-way cache essentially never
    /// hits — the same fact that makes FPGA-socket snoops expensive
    /// (Section 2.2).
    pub endpoint_cache: (u64, u64),
    /// Observability snapshot: always present — end-of-run totals are
    /// published even at [`fpart_obs::ObsLevel::Off`], so the
    /// `fpart_obs::asserts` conservation laws can run on every report.
    /// Per-cycle port classification and traces require the config's
    /// `obs` level to be raised.
    pub obs: ObsSnapshot,
}

/// Cycles between timeline samples in [`RunReport::timeline`].
pub const TIMELINE_INTERVAL: u64 = 4096;

impl RunReport {
    /// Total cycles across phases.
    pub fn total_cycles(&self) -> u64 {
        self.hist_cycles + self.scatter_cycles
    }

    /// Wall-clock seconds at the configured FPGA clock.
    pub fn seconds(&self) -> f64 {
        self.total_cycles() as f64 / self.clock_hz
    }

    /// End-to-end throughput in million tuples per second — the Figure 8
    /// and Figure 9 metric.
    pub fn mtuples_per_sec(&self) -> f64 {
        self.tuples as f64 / self.seconds() / 1e6
    }

    /// Total data moved over the link in GB/s — the second Figure 8 axis.
    pub fn link_gbps(&self) -> f64 {
        self.qpi.total_bytes() as f64 / self.seconds() / 1e9
    }

    /// Link line-operations per cycle during the scatter pass (reads +
    /// writes). The circuit's ceiling is 2.0 (one line in and one out per
    /// clock); on the HARP link the QPI token bucket caps it well below.
    pub fn lines_per_cycle(&self) -> f64 {
        if self.scatter_cycles == 0 {
            return 0.0;
        }
        (self.qpi.lines_read + self.qpi.lines_written) as f64 / self.total_cycles() as f64
    }
}

impl FpgaPartitioner {
    /// A partitioner on the HARP v1 QPI link (Figure 2 FPGA-alone curve).
    pub fn new(config: PartitionerConfig) -> Self {
        let curve = fpart_memmodel::BandwidthCurve::fpga_alone();
        Self {
            config,
            qpi: QpiConfig::harp(curve),
            faults: None,
        }
    }

    /// A partitioner with the paper-default configuration for the given
    /// partition function and (output, input) modes — the common case
    /// when callers do not need to tweak the padded capacity or
    /// fidelity.
    pub fn with_modes(partition_fn: PartitionFn, output: OutputMode, input: InputMode) -> Self {
        Self::new(PartitionerConfig {
            partition_fn,
            ..PartitionerConfig::paper_default(output, input)
        })
    }

    /// Builder: run subsequent simulations at `fidelity`. Batched
    /// fidelity produces the same partitioned bytes (and the same
    /// overflow partition, if any) orders of magnitude faster; use it
    /// when only the functional outcome and the analytic cycle count
    /// matter.
    pub fn with_sim_fidelity(mut self, fidelity: SimFidelity) -> Self {
        self.config = self.config.clone().with_fidelity(fidelity);
        self
    }

    /// A partitioner with an explicit QPI model — e.g. the raw 25.6 GB/s
    /// wrapper of Section 4.7, or [`QpiConfig::unlimited`] for stall-free
    /// verification.
    pub fn with_qpi(config: PartitionerConfig, qpi: QpiConfig) -> Self {
        Self {
            config,
            qpi,
            faults: None,
        }
    }

    /// Arm a fault plan (builder style): every subsequent run injects the
    /// plan's faults at their scheduled points. An empty plan disarms.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(plan);
        self
    }

    /// Arm or disarm a fault plan on this partitioner.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = if plan.is_empty() {
            None
        } else {
            Some(FaultInjector::new(plan))
        };
    }

    /// The configuration.
    pub fn config(&self) -> &PartitionerConfig {
        &self.config
    }

    /// A clone of this partitioner with a different output mode — the QPI
    /// model and any armed fault plan carry over. Escalation chains use
    /// this to retry an aborted PAD run in HIST mode (Section 5.4).
    pub fn with_output_mode(&self, output: OutputMode) -> Self {
        let mut p = self.clone();
        p.config.output = output;
        p
    }

    /// Partition a row-store relation (RID mode).
    ///
    /// # Errors
    /// [`FpartError::PartitionOverflow`] in PAD mode under skew — the
    /// caller is expected to fall back to HIST mode or a CPU partitioner.
    pub fn partition<T: Tuple>(
        &self,
        rel: &Relation<T>,
    ) -> Result<(PartitionedRelation<T>, RunReport)> {
        self.config.validate()?;
        if self.config.input != InputMode::Rid {
            return Err(FpartError::InvalidConfig(
                "partition() requires RID input mode; use partition_columns() for VRID".into(),
            ));
        }
        self.run(InputData::Rows(rel.tuples()))
    }

    /// Partition a column-store relation (VRID mode): only the key column
    /// is read; tuples carry `(key, position)`.
    pub fn partition_columns<T: Tuple>(
        &self,
        rel: &ColumnRelation<T>,
    ) -> Result<(PartitionedRelation<T>, RunReport)> {
        self.config.validate()?;
        if self.config.input != InputMode::Vrid {
            return Err(FpartError::InvalidConfig(
                "partition_columns() requires VRID input mode".into(),
            ));
        }
        self.run(InputData::Keys(rel.keys()))
    }

    /// Partition a run-length-encoded key column (compressed VRID mode):
    /// the circuit reads the packed runs — often a fraction of the raw
    /// key column — and decompresses on chip, "for free … as the first
    /// step of a processing pipeline" (Discussion). Output tuples carry
    /// `(key, decoded position)` exactly like plain VRID mode.
    pub fn partition_rle<T: Tuple>(
        &self,
        column: &crate::codec::RleColumn<T::K>,
    ) -> Result<(PartitionedRelation<T>, RunReport)> {
        self.config.validate()?;
        if self.config.input != InputMode::Vrid {
            return Err(FpartError::InvalidConfig(
                "partition_rle() requires VRID input mode (it emits key+position tuples)".into(),
            ));
        }
        let runs = column.runs();
        let rpl = runs_per_line::<T::K>();
        let lines = runs.len().div_ceil(rpl).max(1);
        let mut line_offsets = Vec::with_capacity(lines);
        let mut acc = 0u64;
        for (i, &(_, len)) in runs.iter().enumerate() {
            if i % rpl == 0 {
                line_offsets.push(acc);
            }
            acc += len as u64;
        }
        if line_offsets.is_empty() {
            line_offsets.push(0);
        }
        self.run(InputData::RleKeys {
            runs,
            line_offsets,
            decoded_len: column.decoded_len(),
        })
    }

    /// Run only the histogram pass: stream the relation read-only and
    /// return the per-partition tuple counts plus the cycles the pass
    /// took — "histograms as a side effect of data movement" (Istvan et
    /// al., cited in the paper's Discussion). Useful on its own for
    /// optimizer statistics and as the planning input for PAD sizing.
    pub fn histogram_only<T: Tuple>(&self, rel: &Relation<T>) -> Result<(Vec<u64>, u64)> {
        self.config.validate()?;
        let input = InputData::<T>::Rows(rel.tuples());
        let parts = self.config.partitions();
        if self.fast_path_active() {
            let pass = crate::fastpath::histogram_pass(&self.config, &self.qpi, &input);
            let hist = (0..parts)
                .map(|p| (0..T::LANES).map(|l| pass.lane_hists[l * parts + p]).sum())
                .collect();
            return Ok((hist, pass.cycles));
        }
        let mut scratch = SimScratch::new(input.expansion());
        let mut rec = Recorder::new(self.config.obs);
        let pass = HistogramPass::run::<T>(
            &self.config,
            self.qpi.clone(),
            &input,
            self.faults.as_ref(),
            &mut scratch,
            &mut rec,
        )?;
        let hist = (0..parts)
            .map(|p| pass.lane_hists.iter().map(|h| h[p]).sum())
            .collect();
        Ok((hist, pass.cycles))
    }

    /// Whether this run takes the batched fast path: the configuration
    /// asks for it AND no fault plan is armed (fault interleavings are
    /// inherently cycle-level, so armed plans force cycle accuracy).
    fn fast_path_active(&self) -> bool {
        self.config.fidelity == SimFidelity::Batched && self.faults.is_none()
    }

    fn run<T: Tuple>(
        &self,
        input: InputData<'_, T>,
    ) -> Result<(PartitionedRelation<T>, RunReport)> {
        if self.fast_path_active() {
            return crate::fastpath::run_batched(&self.config, &self.qpi, &input);
        }
        let parts = self.config.partitions();
        let n = input.tuple_count();
        let mut scratch = SimScratch::new(input.expansion());
        let mut rec = Recorder::new(self.config.obs);

        // Page table covering input + output virtual regions.
        let mut pagetable = build_pagetable::<T>(&input, parts, n, &self.config.output)?;
        if let Some(inj) = &self.faults {
            pagetable.inject_transients(inj.pagetable_schedule());
        }

        // Phase 1 (HIST only): build per-lane histograms.
        let (extents, hist_cycles, hist_stats, valid_hint) = match self.config.output {
            OutputMode::Hist => {
                let pass = HistogramPass::run::<T>(
                    &self.config,
                    self.qpi.clone(),
                    &input,
                    self.faults.as_ref(),
                    &mut scratch,
                    &mut rec,
                )?;
                let valid: Vec<usize> = (0..parts)
                    .map(|p| pass.lane_hists.iter().map(|h| h[p] as usize).sum())
                    .collect();
                (
                    PartitionExtents::from_lane_histograms(&pass.lane_hists, T::LANES),
                    pass.cycles,
                    pass.qpi_stats,
                    Some(valid),
                )
            }
            OutputMode::Pad { padding } => {
                let cap_tuples = padding.capacity(n, parts, T::LANES);
                let cap_lines = cap_tuples.div_ceil(T::LANES) as u64;
                (
                    PartitionExtents::fixed(parts, cap_lines),
                    0,
                    QpiStats::default(),
                    None,
                )
            }
        };

        // Allocate the output region.
        let mut out = match (&valid_hint, &self.config.output) {
            (Some(valid), _) => {
                let lines: Vec<usize> =
                    extents.capacity_lines.iter().map(|&l| l as usize).collect();
                PartitionedRelation::<T>::with_line_extents(valid, &lines)
            }
            (None, OutputMode::Pad { .. }) => PartitionedRelation::<T>::padded(
                parts,
                extents.capacity_lines[0] as usize * T::LANES,
                true,
            ),
            (None, OutputMode::Hist) => unreachable!("HIST always produces a histogram"),
        };

        // Phase 2: scatter.
        let mut engine = ScatterEngine::<T>::new(
            &self.config,
            QpiEndpoint::new(self.qpi.clone()),
            extents,
            &input,
            self.faults.as_ref(),
        );
        let scatter = engine.run(&mut out, &mut pagetable, &mut scratch, &mut rec)?;

        let mut qpi = scatter.qpi_stats;
        qpi.accumulate(&hist_stats);

        // Publish run-level totals into the recorder (exact at every
        // observability level) and freeze the snapshot.
        rec.set(Ctr::Lanes, T::LANES as u64);
        rec.set(Ctr::Partitions, parts as u64);
        rec.set(Ctr::TuplesIn, n as u64);
        qpi.record_into(&mut rec.counters);
        pagetable.record_into(&mut rec.counters);

        let report = RunReport {
            mode: self.config.mode_label(),
            tuples: n as u64,
            hist_cycles,
            scatter_cycles: scatter.cycles,
            clock_hz: self.qpi.clock_hz,
            qpi,
            padding_slots: scatter.padding_slots,
            lane_fifo_high_water: scatter.lane_fifo_high_water,
            forward_hits: scatter.forward_hits,
            translations: pagetable.translations(),
            pt_retries: pagetable.retries_total(),
            timeline: scatter.timeline,
            endpoint_cache: scatter.endpoint_cache,
            obs: rec.finish(),
        };
        Ok((out, report))
    }
}

/// Reusable per-run scratch buffers, hoisted out of the per-cycle hot
/// loop so a run performs no allocations after setup: `pending` and
/// `fetch_buf` are shared by the histogram and scatter passes, `lane_buf`
/// backs [`InputData::fetch`]'s VRID/RLE tuple assembly (previously a
/// fresh `Vec` per fetched line — the dominant allocation churn of large
/// cycle-accurate runs).
pub(crate) struct SimScratch<T: Tuple> {
    pub(crate) pending: std::collections::VecDeque<Line<T>>,
    pub(crate) fetch_buf: Vec<Line<T>>,
    pub(crate) lane_buf: Vec<T>,
}

impl<T: Tuple> SimScratch<T> {
    pub(crate) fn new(expansion: usize) -> Self {
        Self {
            pending: std::collections::VecDeque::with_capacity(expansion * 8),
            fetch_buf: Vec::with_capacity(expansion),
            lane_buf: Vec::with_capacity(T::LANES),
        }
    }

    /// Reset between passes (buffers keep their capacity).
    fn reset(&mut self) {
        self.pending.clear();
        self.fetch_buf.clear();
        self.lane_buf.clear();
    }
}

/// RID (rows) vs VRID (bare keys) vs RLE-compressed-VRID input data.
pub(crate) enum InputData<'a, T: Tuple> {
    Rows(&'a [T]),
    Keys(&'a [T::K]),
    /// Run-length-encoded key column: the circuit reads packed runs and
    /// per-lane expanders regenerate `(key, position)` tuples on chip.
    /// `line_offsets[i]` is the decoded position where input line `i`'s
    /// first tuple lands (VRIDs must be globally consistent while
    /// `fetch` stays stateless).
    RleKeys {
        runs: &'a [(T::K, u8)],
        line_offsets: Vec<u64>,
        decoded_len: usize,
    },
}

/// Runs per 64 B line in the packed RLE layout (each entry stores the
/// key word plus a word-aligned length).
fn runs_per_line<K: fpart_types::Key>() -> usize {
    CACHE_LINE_BYTES / (2 * std::mem::size_of::<K>())
}

impl<T: Tuple> InputData<'_, T> {
    pub(crate) fn tuple_count(&self) -> usize {
        match self {
            Self::Rows(r) => r.len(),
            Self::Keys(k) => k.len(),
            Self::RleKeys { decoded_len, .. } => *decoded_len,
        }
    }

    /// Cache lines the FPGA must *read* for this input.
    pub(crate) fn input_lines(&self) -> usize {
        match self {
            Self::Rows(r) => r.len().div_ceil(T::LANES),
            Self::Keys(k) => {
                let keys_per_line = CACHE_LINE_BYTES / std::mem::size_of::<T::K>();
                k.len().div_ceil(keys_per_line)
            }
            Self::RleKeys { runs, .. } => runs.len().div_ceil(runs_per_line::<T::K>()),
        }
    }

    /// Tuple lines generated inside the circuit per input line ("for each
    /// cache-line the FPGA receives, two cache-lines are generated
    /// internally", Section 4.7 — general for all widths).
    pub(crate) fn expansion(&self) -> usize {
        match self {
            Self::Rows(_) => 1,
            Self::Keys(_) => {
                let keys_per_line = CACHE_LINE_BYTES / std::mem::size_of::<T::K>();
                keys_per_line / T::LANES
            }
            // Worst case: every run in the line is MAX_RUN long.
            Self::RleKeys { .. } => {
                (runs_per_line::<T::K>() * crate::codec::MAX_RUN as usize).div_ceil(T::LANES)
            }
        }
    }

    /// Materialise the tuple lines for input line `idx` into `sink`.
    /// `lane_buf` is caller-provided scratch (cleared here) so the hot
    /// loop never allocates.
    pub(crate) fn fetch(&self, idx: usize, sink: &mut Vec<Line<T>>, lane_buf: &mut Vec<T>) {
        lane_buf.clear();
        match self {
            Self::Rows(rows) => {
                let start = idx * T::LANES;
                let end = (start + T::LANES).min(rows.len());
                sink.push(Line::from_partial(&rows[start..end]));
            }
            Self::Keys(keys) => {
                let keys_per_line = CACHE_LINE_BYTES / std::mem::size_of::<T::K>();
                let start = idx * keys_per_line;
                let end = (start + keys_per_line).min(keys.len());
                // The circuit appends the key's position as the virtual
                // record id (Section 4.5).
                for chunk_start in (start..end).step_by(T::LANES) {
                    lane_buf.clear();
                    for pos in chunk_start..(chunk_start + T::LANES).min(end) {
                        lane_buf.push(T::new(keys[pos], pos as u64));
                    }
                    sink.push(Line::from_partial(lane_buf));
                }
            }
            Self::RleKeys {
                runs, line_offsets, ..
            } => {
                let rpl = runs_per_line::<T::K>();
                let start = idx * rpl;
                let end = (start + rpl).min(runs.len());
                let mut pos = line_offsets[idx];
                for &(key, len) in &runs[start..end] {
                    for _ in 0..len {
                        lane_buf.push(T::new(key, pos));
                        pos += 1;
                        if lane_buf.len() == T::LANES {
                            sink.push(Line::from_slice(lane_buf));
                            lane_buf.clear();
                        }
                    }
                }
                if !lane_buf.is_empty() {
                    sink.push(Line::from_partial(lane_buf));
                }
            }
        }
    }
}

/// Construct the page table mapping the input and (upper-bound) output
/// virtual regions.
pub(crate) fn build_pagetable<T: Tuple>(
    input: &InputData<'_, T>,
    parts: usize,
    n: usize,
    output: &OutputMode,
) -> Result<PageTable> {
    let input_bytes = input.input_lines() as u64 * CACHE_LINE_BYTES as u64;
    // Upper bound on output: every partition padded to whole lines per
    // lane, plus PAD padding.
    let out_tuples = match output {
        OutputMode::Hist => n + parts * T::LANES * T::LANES,
        OutputMode::Pad { padding } => parts * padding.capacity(n, parts, T::LANES),
    };
    let out_bytes = (out_tuples * T::WIDTH) as u64 + CACHE_LINE_BYTES as u64;
    let pages = PageTable::pages_for(input_bytes) + PageTable::pages_for(out_bytes) + 1;
    let mut alloc = PageAllocator::new((pages as u64 + 2) * fpart_hwsim::PAGE_BYTES);
    let frames = alloc.allocate(pages)?;
    let mut pt = PageTable::new(pages);
    pt.populate(&frames)?;
    Ok(pt)
}

/// Result of the histogram pass.
struct HistogramPass {
    lane_hists: Vec<Vec<u64>>,
    cycles: u64,
    qpi_stats: QpiStats,
    _marker: std::marker::PhantomData<()>,
}

impl HistogramPass {
    /// Stream the input read-only, counting tuples per (lane, partition)
    /// through the hash pipelines. No data is written back (Section 4.5:
    /// "During the first pass, no data is written back, and the histogram
    /// is built using an internal BRAM").
    ///
    /// # Errors
    /// Under fault injection: [`FpartError::LinkRetryExhausted`] when a
    /// scheduled QPI burst outlasts the replay budget, and
    /// [`FpartError::BramSoftError`] when a histogram-BRAM soft error is
    /// detected as the pass reads the counts back out.
    fn run<T: Tuple>(
        cfg: &PartitionerConfig,
        qpi_cfg: QpiConfig,
        input: &InputData<'_, T>,
        injector: Option<&FaultInjector>,
        scratch: &mut SimScratch<T>,
        rec: &mut Recorder,
    ) -> Result<Self> {
        let parts = cfg.partitions();
        let mut qpi = QpiEndpoint::new(qpi_cfg);
        if let Some(inj) = injector {
            qpi.inject_faults(inj.qpi_schedule(PassId::Histogram));
        }
        let mut pipes: Vec<HashPipeline<T>> = (0..T::LANES)
            .map(|_| HashPipeline::new(cfg.partition_fn))
            .collect();
        let mut lane_hists = vec![vec![0u64; parts]; T::LANES];

        let total_lines = input.input_lines();
        let expansion = input.expansion();
        let mut read_cursor = 0usize;
        scratch.reset();
        let SimScratch {
            pending,
            fetch_buf,
            lane_buf,
        } = scratch;
        let mut cycles = 0u64;

        loop {
            let pipes_busy = pipes.iter().any(|p| !p.is_empty());
            if read_cursor >= total_lines
                && qpi.reads_in_flight() == 0
                && pending.is_empty()
                && !pipes_busy
            {
                break;
            }
            cycles += 1;
            qpi.tick();
            if let Some(err) = qpi.hard_fault() {
                return Err(err);
            }

            // Deliver one tuple line into the hash pipes.
            let line = pending.pop_front();
            for (lane, pipe) in pipes.iter_mut().enumerate() {
                let tuple = line.as_ref().map(|l| l.lane(lane));
                if let Some(out) = pipe.clock(tuple.filter(|t| !t.is_dummy())) {
                    lane_hists[lane][out.hash] += 1;
                }
            }

            // Accept one read response.
            if let Some(tag) = qpi.pop_ready_read() {
                fetch_buf.clear();
                input.fetch(tag as usize, fetch_buf, lane_buf);
                pending.extend(fetch_buf.drain(..));
            }

            // Issue a new request while the in-flight window has room,
            // classifying the read port for the stall-accounting laws:
            // every cycle is exactly one of busy/stall/throttled/idle.
            let committed = pending.len() + qpi.reads_in_flight() * expansion;
            if read_cursor < total_lines {
                if committed + expansion <= cfg.fifo_capacity {
                    if qpi.try_read(read_cursor as u64) {
                        read_cursor += 1;
                        rec.inc(Ctr::HistRdBusy);
                    } else {
                        rec.inc(Ctr::HistRdStall);
                    }
                } else {
                    rec.inc(Ctr::HistRdThrottled);
                }
            } else {
                rec.inc(Ctr::HistRdIdle);
            }
        }

        // The histogram BRAM is read back out at the end of the pass (to
        // compute the prefix sums); a scheduled soft error surfaces as a
        // parity hit here. Addresses are taken modulo the BRAM size.
        if let Some(inj) = injector {
            if let Some(&addr) = inj.bram_flips(BramKind::Histogram).first() {
                return Err(FpartError::BramSoftError {
                    bram: "histogram",
                    addr: addr % parts.max(1),
                });
            }
        }

        let qpi_stats = qpi.stats();
        rec.set(Ctr::HistCycles, cycles);
        rec.set(Ctr::HistLinesRead, qpi_stats.lines_read);
        if !rec.on() {
            // Synthesize the port classification from end-of-run totals:
            // one grant per fetched line, one stall per endpoint denial
            // (credit or replay window), the rest idle. The attempts
            // argument guarantees busy + stall <= cycles.
            let busy = qpi_stats.lines_read;
            let stall = qpi_stats.read_stall_cycles + qpi_stats.replay_stall_cycles;
            rec.set(Ctr::HistRdBusy, busy);
            rec.set(Ctr::HistRdStall, stall);
            rec.set(Ctr::HistRdIdle, cycles - busy - stall);
        }
        rec.event(cycles, "hist", "pass_end", qpi_stats.lines_read);

        Ok(Self {
            lane_hists,
            cycles,
            qpi_stats,
            _marker: std::marker::PhantomData,
        })
    }
}

/// Result of the scatter pass.
struct ScatterResult {
    cycles: u64,
    qpi_stats: QpiStats,
    padding_slots: u64,
    lane_fifo_high_water: usize,
    forward_hits: (u64, u64),
    timeline: Vec<(u64, u64, u64)>,
    endpoint_cache: (u64, u64),
}

/// The full-pipeline engine of Figure 5.
struct ScatterEngine<'a, T: Tuple> {
    cfg: &'a PartitionerConfig,
    qpi: QpiEndpoint,
    pipes: Vec<HashPipeline<T>>,
    lane_fifos: Vec<Fifo<crate::hashmod::HashedTuple<T>>>,
    combiners: Vec<WriteCombiner<T>>,
    out_fifos: Vec<Fifo<CombinedLine<T>>>,
    writeback: WriteBack<T>,
    wb_fifo: Fifo<AddressedLine<T>>,
    input: &'a InputData<'a, T>,
    /// Virtual line index where the output region starts (input region
    /// precedes it).
    out_base_line: u64,
    /// The QPI endpoint's 128 KB two-way cache (Section 2.1), checked on
    /// every read the engine issues.
    endpoint_cache: fpart_hwsim::SetAssociativeCache,
}

impl<'a, T: Tuple> ScatterEngine<'a, T> {
    fn new(
        cfg: &'a PartitionerConfig,
        mut qpi: QpiEndpoint,
        extents: PartitionExtents,
        input: &'a InputData<'a, T>,
        injector: Option<&FaultInjector>,
    ) -> Self {
        let pad_mode = matches!(cfg.output, OutputMode::Pad { .. });
        let parts = cfg.partitions();
        let mut writeback = WriteBack::new(extents, T::LANES, pad_mode);
        if let Some(inj) = injector {
            qpi.inject_faults(inj.qpi_schedule(PassId::Scatter));
            for addr in inj.bram_flips(BramKind::FillRate) {
                writeback.inject_parity_error(addr % parts.max(1));
            }
            if pad_mode {
                if let Some(at) = inj.pad_overflow_at() {
                    writeback.force_overflow_at(at);
                }
            }
        }
        Self {
            cfg,
            qpi,
            pipes: (0..T::LANES)
                .map(|_| HashPipeline::new(cfg.partition_fn))
                .collect(),
            lane_fifos: (0..T::LANES)
                .map(|_| Fifo::new(cfg.fifo_capacity))
                .collect(),
            combiners: (0..T::LANES)
                .map(|_| WriteCombiner::new(cfg.partitions()))
                .collect(),
            out_fifos: (0..T::LANES)
                .map(|_| Fifo::new(cfg.out_fifo_capacity))
                .collect(),
            writeback,
            wb_fifo: Fifo::new(8),
            out_base_line: input.input_lines() as u64,
            input,
            endpoint_cache: fpart_hwsim::SetAssociativeCache::harp_endpoint_cache(),
        }
    }

    fn run(
        &mut self,
        out: &mut PartitionedRelation<T>,
        pagetable: &mut PageTable,
        scratch: &mut SimScratch<T>,
        rec: &mut Recorder,
    ) -> Result<ScatterResult> {
        let total_lines = self.input.input_lines();
        let expansion = self.input.expansion();
        let mut read_cursor = 0usize;
        scratch.reset();
        let SimScratch {
            pending,
            fetch_buf,
            lane_buf,
        } = scratch;
        let mut cycles = 0u64;
        let mut flushing = false;
        let mut lines_written: Vec<u64> = vec![0; out.num_partitions()];
        let mut valid_written: Vec<u64> = vec![0; out.num_partitions()];
        let mut timeline: Vec<(u64, u64, u64)> = Vec::new();
        let mut tuple_lines = 0u64;

        loop {
            cycles += 1;
            self.qpi.tick();
            if let Some(err) = self.qpi.hard_fault() {
                return Err(err);
            }
            if cycles.is_multiple_of(TIMELINE_INTERVAL) {
                let s = self.qpi.stats();
                timeline.push((cycles, s.lines_read, s.lines_written));
                rec.event(
                    cycles,
                    "scatter",
                    "interval",
                    s.lines_read + s.lines_written,
                );
            }

            // (1) QPI write issue: commit the oldest addressed line. The
            // port classifies every cycle as exactly one of busy (grant),
            // stall (endpoint denial) or idle (nothing to write).
            if self.wb_fifo.peek().is_some() {
                if self.qpi.try_write() {
                    rec.inc(Ctr::WrBusy);
                    let (part, dest_line, line) = self.wb_fifo.pop().expect("peeked");
                    // Address translation for the write (virtual → physical).
                    let vaddr = (self.out_base_line + dest_line) * CACHE_LINE_BYTES as u64;
                    let _paddr = pagetable.translate(vaddr)?;
                    let base_slot = dest_line as usize * T::LANES;
                    let dst = &mut out.raw_data_mut()[base_slot..base_slot + T::LANES];
                    dst.copy_from_slice(line.tuples());
                    lines_written[part] += 1;
                    valid_written[part] += line.valid_count() as u64;
                } else {
                    rec.inc(Ctr::WrStall);
                }
            } else {
                rec.inc(Ctr::WrIdle);
            }

            // (2) Write back: pop one combined line (round robin over
            // non-empty FIFOs) when the last-stage FIFO has headroom.
            let wb_input = if self.wb_fifo.free_slots() >= 2 {
                let mut popped = None;
                for _ in 0..T::LANES {
                    let lane = self.writeback.rr_lane();
                    self.writeback.advance_rr();
                    if let Some(cl) = self.out_fifos[lane].pop() {
                        popped = Some(cl);
                        break;
                    }
                }
                popped
            } else {
                None
            };
            if wb_input.is_none() {
                rec.inc(Ctr::RrIdleCycles);
            }
            if let Some(addressed) = self.writeback.clock(wb_input)? {
                self.wb_fifo
                    .push(addressed)
                    .unwrap_or_else(|_| unreachable!("headroom reserved before input"));
            }

            // (3) Write combiners.
            for lane in 0..T::LANES {
                let free = self.out_fifos[lane].free_slots();
                let can = self.combiners[lane].can_accept(free);
                let input = if can {
                    self.lane_fifos[lane].pop()
                } else {
                    None
                };
                if input.is_some() {
                    self.writeback.note_consumed(1);
                }
                if let Some(line) = self.combiners[lane].clock(input, free > 0) {
                    self.out_fifos[lane]
                        .push(line)
                        .unwrap_or_else(|_| unreachable!("can_accept reserves output room"));
                }
            }

            // (4) Hash pipelines consume one tuple line.
            let line = pending.pop_front();
            tuple_lines += u64::from(line.is_some());
            for (lane, pipe) in self.pipes.iter_mut().enumerate() {
                let tuple = line.as_ref().map(|l| l.lane(lane));
                if let Some(out_t) = pipe.clock(tuple.filter(|t| !t.is_dummy())) {
                    self.lane_fifos[lane]
                        .push(out_t)
                        .unwrap_or_else(|_| unreachable!("read throttling bounds occupancy"));
                }
            }

            // (5) Read responses.
            if let Some(tag) = self.qpi.pop_ready_read() {
                fetch_buf.clear();
                self.input.fetch(tag as usize, fetch_buf, lane_buf);
                pending.extend(fetch_buf.drain(..));
            }

            // (6) Read requests, throttled by first-stage FIFO occupancy
            // (Section 4.3).
            let fifo_occupancy = self.lane_fifos.iter().map(Fifo::len).max().unwrap_or(0);
            let pipe_occupancy = self
                .pipes
                .iter()
                .map(HashPipeline::occupancy)
                .max()
                .unwrap_or(0);
            let committed = pending.len()
                + self.qpi.reads_in_flight() * expansion
                + pipe_occupancy
                + fifo_occupancy;
            rec.sample_occupancy(fifo_occupancy as u64);
            if read_cursor < total_lines {
                if committed + expansion <= self.cfg.fifo_capacity {
                    // Translate the input address (the page table is
                    // pipelined; throughput-neutral).
                    let vaddr = read_cursor as u64 * CACHE_LINE_BYTES as u64;
                    let _paddr = pagetable.translate(vaddr)?;
                    if self.qpi.try_read(read_cursor as u64) {
                        self.endpoint_cache.access(vaddr);
                        read_cursor += 1;
                        rec.inc(Ctr::RdBusy);
                        if read_cursor == total_lines {
                            rec.event(cycles, "scatter", "reads_done", total_lines as u64);
                        }
                    } else {
                        rec.inc(Ctr::RdStall);
                    }
                } else {
                    rec.inc(Ctr::RdThrottled);
                }
            } else {
                rec.inc(Ctr::RdIdle);
            }

            // Flush once the scatter datapath has drained (including read
            // responses still travelling over QPI).
            if !flushing
                && read_cursor >= total_lines
                && self.qpi.reads_in_flight() == 0
                && pending.is_empty()
                && self.pipes.iter().all(HashPipeline::is_empty)
                && self.lane_fifos.iter().all(Fifo::is_empty)
                && self.combiners.iter().all(|c| c.in_flight() == 0)
            {
                for c in &mut self.combiners {
                    c.start_flush();
                }
                flushing = true;
                rec.event(cycles, "scatter", "flush_start", read_cursor as u64);
            }

            if flushing
                && self
                    .combiners
                    .iter()
                    .all(|c| c.flush_done() && c.in_flight() == 0)
                && self.out_fifos.iter().all(Fifo::is_empty)
                && self.writeback.in_flight() == 0
                && self.wb_fifo.is_empty()
            {
                debug_assert!(
                    self.lane_fifos.iter().all(Fifo::is_empty)
                        && self.pipes.iter().all(HashPipeline::is_empty)
                        && pending.is_empty(),
                    "datapath must be empty at termination"
                );
                break;
            }
        }

        // Publish per-partition fill metadata.
        for p in 0..out.num_partitions() {
            out.set_partition_fill(
                p,
                lines_written[p] as usize * T::LANES,
                valid_written[p] as usize,
            );
        }

        let padding_slots = self.combiners.iter().map(|c| c.stats().flush_dummies).sum();
        let forward_hits = self.combiners.iter().fold((0, 0), |acc, c| {
            let s = c.stats();
            (acc.0 + s.forward_1d_hits, acc.1 + s.forward_2d_hits)
        });

        self.publish_totals(rec, cycles, tuple_lines, &lines_written, &valid_written);
        rec.event(cycles, "scatter", "pass_end", lines_written.iter().sum());

        Ok(ScatterResult {
            cycles,
            qpi_stats: self.qpi.stats(),
            padding_slots,
            lane_fifo_high_water: self
                .lane_fifos
                .iter()
                .map(Fifo::high_water)
                .max()
                .unwrap_or(0),
            forward_hits,
            timeline,
            endpoint_cache: (self.endpoint_cache.hits(), self.endpoint_cache.misses()),
        })
    }

    /// Publish scatter-side end-of-run totals into the recorder; when
    /// per-cycle counting was off, synthesize the port classification
    /// from the endpoint's own totals so the conservation laws still
    /// have exact values to check.
    fn publish_totals(
        &self,
        rec: &mut Recorder,
        cycles: u64,
        tuple_lines: u64,
        lines_written: &[u64],
        valid_written: &[u64],
    ) {
        let total_lines = self.input.input_lines() as u64;
        let written: u64 = lines_written.iter().sum();
        let valid: u64 = valid_written.iter().sum();
        rec.set(Ctr::ScatterCycles, cycles);
        rec.set(Ctr::InputLines, total_lines);
        rec.set(Ctr::TupleLines, tuple_lines);
        rec.set(Ctr::LinesWritten, written);
        rec.set(Ctr::TuplesOut, valid);
        rec.set(Ctr::WbLinesEmitted, self.writeback.lines_emitted());
        rec.set(Ctr::EpCacheHits, self.endpoint_cache.hits());
        rec.set(Ctr::EpCacheMisses, self.endpoint_cache.misses());
        self.writeback.record_bram_into(&mut rec.counters);

        let mut comb_tuples = 0u64;
        let mut comb_lines = 0u64;
        let mut flush_lines = 0u64;
        let mut flush_dummies = 0u64;
        let mut fwd = (0u64, 0u64);
        for c in &self.combiners {
            let s = c.stats();
            comb_tuples += s.tuples_in;
            comb_lines += s.lines_out;
            flush_lines += s.flush_lines;
            flush_dummies += s.flush_dummies;
            fwd.0 += s.forward_1d_hits;
            fwd.1 += s.forward_2d_hits;
            c.record_bram_into(&mut rec.counters);
        }
        rec.set(Ctr::CombTuplesIn, comb_tuples);
        rec.set(Ctr::CombLinesOut, comb_lines);
        rec.set(Ctr::CombFlushLines, flush_lines);
        rec.set(Ctr::CombFlushDummies, flush_dummies);
        rec.set(Ctr::PaddingSlots, flush_dummies);
        rec.set(Ctr::Fwd1dHits, fwd.0);
        rec.set(Ctr::Fwd2dHits, fwd.1);

        if !rec.on() {
            // Port synthesis. Replay-window stalls are attributed to the
            // read port first (up to its idle headroom), remainder to the
            // write port — the per-cycle attempts argument guarantees
            // both ports stay within `cycles`.
            let s = self.qpi.stats();
            let rd_headroom = cycles - s.lines_read - s.read_stall_cycles;
            let rd_replay = s.replay_stall_cycles.min(rd_headroom);
            let wr_replay = s.replay_stall_cycles - rd_replay;
            rec.set(Ctr::RdBusy, s.lines_read);
            rec.set(Ctr::RdStall, s.read_stall_cycles + rd_replay);
            rec.set(Ctr::RdIdle, rd_headroom - rd_replay);
            rec.set(Ctr::WrBusy, s.lines_written);
            rec.set(Ctr::WrStall, s.write_stall_cycles + wr_replay);
            rec.set(
                Ctr::WrIdle,
                cycles - s.lines_written - s.write_stall_cycles - wr_replay,
            );
            rec.set(Ctr::RrIdleCycles, cycles - comb_lines - flush_lines);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_datagen::KeyDistribution;
    use fpart_hash::PartitionFn;
    use fpart_types::relation::content_checksum;
    use fpart_types::{Tuple16, Tuple64, Tuple8};

    fn config(bits: u32, output: OutputMode, input: InputMode) -> PartitionerConfig {
        PartitionerConfig {
            partition_fn: PartitionFn::Murmur { bits },
            output,
            input,
            fifo_capacity: 64,
            out_fifo_capacity: 8,
            fidelity: SimFidelity::CycleAccurate,
            obs: fpart_obs::ObsLevel::Off,
        }
    }

    fn rel(n: usize) -> Relation<Tuple8> {
        let keys: Vec<u32> = KeyDistribution::Random.generate_keys(n, 42);
        Relation::from_keys(&keys)
    }

    /// Every tuple lands in the partition its hash says, and the multiset
    /// of (key, payload) pairs is preserved.
    fn assert_correct_partitioning<T: Tuple>(
        input_tuples: &[T],
        out: &PartitionedRelation<T>,
        f: PartitionFn,
    ) {
        assert_eq!(out.total_valid(), input_tuples.len());
        for p in 0..out.num_partitions() {
            for t in out.partition_tuples(p) {
                assert_eq!(f.partition_of(t.key()), p, "tuple in wrong partition");
            }
        }
        let expect = content_checksum(input_tuples.iter().copied());
        let got = content_checksum(out.all_tuples());
        assert_eq!(expect, got, "partitioning must be a permutation");
    }

    #[test]
    fn pad_rid_partitions_correctly() {
        let r = rel(5000);
        let cfg = config(6, OutputMode::pad_default(), InputMode::Rid);
        let f = cfg.partition_fn;
        let p = FpgaPartitioner::new(cfg);
        let (out, report) = p.partition(&r).unwrap();
        assert_correct_partitioning(r.tuples(), &out, f);
        assert_eq!(report.tuples, 5000);
        assert_eq!(report.hist_cycles, 0);
        assert!(report.scatter_cycles > 0);
        assert_eq!(report.mode, "PAD/RID");
    }

    #[test]
    fn hist_rid_partitions_correctly_with_two_passes() {
        let r = rel(5000);
        let cfg = config(6, OutputMode::Hist, InputMode::Rid);
        let f = cfg.partition_fn;
        let p = FpgaPartitioner::new(cfg);
        let (out, report) = p.partition(&r).unwrap();
        assert_correct_partitioning(r.tuples(), &out, f);
        assert!(report.hist_cycles > 0, "HIST runs a first pass");
        // The histogram pass reads the whole input once more.
        assert!(report.qpi.lines_read >= 2 * (5000 / 8) as u64);
        assert_eq!(report.mode, "HIST/RID");
    }

    #[test]
    fn hist_layout_is_tight() {
        // HIST minimises intermediate memory: allocation is bounded by
        // valid + per-lane line padding.
        let r = rel(10_000);
        let cfg = config(4, OutputMode::Hist, InputMode::Rid);
        let p = FpgaPartitioner::new(cfg);
        let (out, _) = p.partition(&r).unwrap();
        let max_padding = 16 * Tuple8::LANES * Tuple8::LANES; // parts × lanes × (lanes-1) rounded up
        assert!(out.allocated_slots() <= 10_000 + max_padding);
        // And every allocated line was actually written (written == capacity).
        for p_ in 0..out.num_partitions() {
            assert_eq!(out.partition_written(p_), out.partition_capacity(p_));
        }
    }

    #[test]
    fn vrid_reads_half_the_lines() {
        let keys: Vec<u32> = KeyDistribution::Random.generate_keys(4096, 1);
        let col = ColumnRelation::<Tuple8>::from_keys(&keys);
        let cfg = config(5, OutputMode::pad_default(), InputMode::Vrid);
        let p = FpgaPartitioner::new(cfg.clone());
        let (out, report) = p.partition_columns(&col).unwrap();

        // Payloads are the positions; materialisation restores the pairs.
        assert_eq!(out.total_valid(), 4096);
        for part in 0..out.num_partitions() {
            for t in out.partition_tuples(part) {
                assert_eq!(keys[t.payload as usize], t.key, "vrid points at its row");
                assert_eq!(cfg.partition_fn.partition_of(t.key), part);
            }
        }
        // 4096 u32 keys = 256 key lines read; 4096 tuples ≈ 512+ lines written.
        assert_eq!(report.qpi.lines_read, 256);
        assert!(report.qpi.lines_written >= 512);
    }

    #[test]
    fn pad_overflow_aborts_under_skew() {
        // All tuples to one partition with tiny padding → overflow.
        let keys = vec![7u32; 4096];
        let r = Relation::<Tuple8>::from_keys(&keys);
        let cfg = PartitionerConfig {
            partition_fn: PartitionFn::Murmur { bits: 6 },
            output: OutputMode::Pad {
                padding: crate::config::PaddingSpec::Tuples(0),
            },
            input: InputMode::Rid,
            fifo_capacity: 64,
            out_fifo_capacity: 8,
            fidelity: SimFidelity::CycleAccurate,
            obs: fpart_obs::ObsLevel::Off,
        };
        let p = FpgaPartitioner::new(cfg);
        let err = p.partition(&r).unwrap_err();
        assert!(matches!(err, FpartError::PartitionOverflow { .. }));
    }

    #[test]
    fn hist_mode_handles_full_skew() {
        // The same all-one-partition input succeeds in HIST mode
        // ("the HIST mode must be used to ensure no overflow occurs").
        let keys = vec![7u32; 4096];
        let r = Relation::<Tuple8>::from_keys(&keys);
        let cfg = config(6, OutputMode::Hist, InputMode::Rid);
        let p = FpgaPartitioner::new(cfg);
        let (out, _) = p.partition(&r).unwrap();
        assert_eq!(out.total_valid(), 4096);
        let target = PartitionFn::Murmur { bits: 6 }.partition_of(7u32);
        assert_eq!(out.partition_valid(target), 4096);
    }

    /// The headline property: with unconstrained bandwidth the circuit
    /// sustains one cache line per clock — cycles ≈ input lines + small
    /// constant latency + flush.
    #[test]
    fn stall_free_at_unlimited_bandwidth() {
        let n = 8192usize;
        let r = rel(n);
        let cfg = config(4, OutputMode::pad_default(), InputMode::Rid);
        let p = FpgaPartitioner::with_qpi(cfg, QpiConfig::unlimited(200e6));
        let (_, report) = p.partition(&r).unwrap();
        let input_lines = (n / 8) as u64;
        let flush = 16 * 8; // partitions × lanes
        let slack = 80; // pipeline fill + FIFO latencies
        assert!(
            report.scatter_cycles <= input_lines + flush as u64 + slack,
            "took {} cycles for {} lines (+{} flush)",
            report.scatter_cycles,
            input_lines,
            flush
        );
        assert_eq!(report.qpi.read_stall_cycles, 0);
        assert_eq!(report.qpi.write_stall_cycles, 0);
    }

    #[test]
    fn qpi_bandwidth_bounds_throughput() {
        // On the HARP link the same run is slower and shows stalls.
        let r = rel(8192);
        let cfg = config(4, OutputMode::pad_default(), InputMode::Rid);
        let unlimited = FpgaPartitioner::with_qpi(cfg.clone(), QpiConfig::unlimited(200e6));
        let harp = FpgaPartitioner::new(cfg);
        let (_, fast) = unlimited.partition(&r).unwrap();
        let (_, slow) = harp.partition(&r).unwrap();
        assert!(
            slow.scatter_cycles > fast.scatter_cycles * 2,
            "QPI-bound run ({}) should be >2x slower than unlimited ({})",
            slow.scatter_cycles,
            fast.scatter_cycles
        );
    }

    #[test]
    fn wide_tuples_work() {
        let keys: Vec<u64> = KeyDistribution::Random.generate_keys(2000, 5);
        let r16 = Relation::<Tuple16>::from_keys(&keys);
        let cfg = config(4, OutputMode::Hist, InputMode::Rid);
        let f = cfg.partition_fn;
        let p = FpgaPartitioner::new(cfg);
        let (out, _) = p.partition(&r16).unwrap();
        assert_correct_partitioning(r16.tuples(), &out, f);

        let r64 = Relation::<Tuple64>::from_keys(&keys);
        let cfg = config(4, OutputMode::pad_default(), InputMode::Rid);
        let p = FpgaPartitioner::new(cfg);
        let (out, report) = p.partition(&r64).unwrap();
        assert_correct_partitioning(r64.tuples(), &out, f);
        // 64 B tuples: one per line; reads == tuples.
        assert_eq!(report.qpi.lines_read, 2000);
    }

    #[test]
    fn non_line_multiple_input() {
        let r = rel(1003); // not a multiple of 8
        let cfg = config(4, OutputMode::Hist, InputMode::Rid);
        let f = cfg.partition_fn;
        let p = FpgaPartitioner::new(cfg);
        let (out, report) = p.partition(&r).unwrap();
        assert_correct_partitioning(r.tuples(), &out, f);
        assert_eq!(report.tuples, 1003);
    }

    #[test]
    fn empty_input() {
        let r = Relation::<Tuple8>::from_tuples(&[]);
        let cfg = config(4, OutputMode::Hist, InputMode::Rid);
        let p = FpgaPartitioner::new(cfg);
        let (out, report) = p.partition(&r).unwrap();
        assert_eq!(out.total_valid(), 0);
        assert_eq!(report.tuples, 0);
    }

    #[test]
    fn mode_mismatch_is_rejected() {
        let r = rel(100);
        let cfg = config(4, OutputMode::Hist, InputMode::Vrid);
        let p = FpgaPartitioner::new(cfg);
        assert!(matches!(
            p.partition(&r).unwrap_err(),
            FpartError::InvalidConfig(_)
        ));
    }

    #[test]
    fn radix_partitioning_also_works() {
        let r = rel(3000);
        let cfg = PartitionerConfig {
            partition_fn: PartitionFn::Radix { bits: 5 },
            output: OutputMode::Hist,
            input: InputMode::Rid,
            fifo_capacity: 64,
            out_fifo_capacity: 8,
            fidelity: SimFidelity::CycleAccurate,
            obs: fpart_obs::ObsLevel::Off,
        };
        let f = cfg.partition_fn;
        let p = FpgaPartitioner::new(cfg);
        let (out, _) = p.partition(&r).unwrap();
        assert_correct_partitioning(r.tuples(), &out, f);
    }

    #[test]
    fn qpi_transients_slow_but_do_not_corrupt() {
        use fpart_hwsim::{Fault, FaultPlan};
        let r = rel(4096);
        let cfg = config(4, OutputMode::Hist, InputMode::Rid);
        let f = cfg.partition_fn;
        let clean = FpgaPartitioner::with_qpi(cfg.clone(), QpiConfig::unlimited(200e6));
        let (out_clean, rep_clean) = clean.partition(&r).unwrap();

        let plan = FaultPlan::new()
            .with(Fault::QpiTransient {
                pass: fpart_hwsim::PassId::Histogram,
                op_index: 10,
                burst: 3,
            })
            .with(Fault::QpiTransient {
                pass: fpart_hwsim::PassId::Scatter,
                op_index: 100,
                burst: 2,
            })
            .with(Fault::PageTableTransient {
                translation_index: 5,
                retries: 2,
            });
        let faulty = FpgaPartitioner::with_qpi(cfg, QpiConfig::unlimited(200e6)).with_faults(plan);
        let (out_faulty, rep_faulty) = faulty.partition(&r).unwrap();

        assert_correct_partitioning(r.tuples(), &out_faulty, f);
        assert_eq!(
            content_checksum(out_clean.all_tuples()),
            content_checksum(out_faulty.all_tuples()),
            "replayed transients never corrupt data"
        );
        assert_eq!(rep_faulty.qpi.link_errors, 2);
        assert_eq!(rep_faulty.qpi.link_replays, 5);
        assert!(rep_faulty.qpi.replay_stall_cycles > 0);
        assert!(
            rep_faulty.total_cycles() > rep_clean.total_cycles(),
            "replays cost cycles"
        );
        assert_eq!(rep_faulty.pt_retries, 2);
        assert_eq!(rep_clean.pt_retries, 0);
    }

    #[test]
    fn fatal_qpi_burst_surfaces_link_retry_exhausted() {
        use fpart_hwsim::{Fault, FaultPlan};
        let r = rel(2048);
        let cfg = config(4, OutputMode::pad_default(), InputMode::Rid);
        let plan = FaultPlan::new().with(Fault::QpiTransient {
            pass: fpart_hwsim::PassId::Scatter,
            op_index: 50,
            burst: 1000,
        });
        let p = FpgaPartitioner::new(cfg).with_faults(plan);
        let err = p.partition(&r).unwrap_err();
        assert!(
            matches!(err, FpartError::LinkRetryExhausted { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn bram_soft_errors_surface_per_pass() {
        use fpart_hwsim::{BramKind, Fault, FaultPlan};
        let r = rel(2048);
        // Histogram BRAM flip aborts the HIST first pass.
        let cfg = config(4, OutputMode::Hist, InputMode::Rid);
        let plan = FaultPlan::new().with(Fault::BramFlip {
            bram: BramKind::Histogram,
            addr: 3,
        });
        let err = FpgaPartitioner::new(cfg)
            .with_faults(plan)
            .partition(&r)
            .unwrap_err();
        assert_eq!(
            err,
            FpartError::BramSoftError {
                bram: "histogram",
                addr: 3
            }
        );

        // Fill-rate BRAM flip aborts the scatter pass.
        let cfg = config(4, OutputMode::pad_default(), InputMode::Rid);
        let plan = FaultPlan::new().with(Fault::BramFlip {
            bram: BramKind::FillRate,
            addr: 19, // modulo 16 partitions → address 3
        });
        let err = FpgaPartitioner::new(cfg)
            .with_faults(plan)
            .partition(&r)
            .unwrap_err();
        assert_eq!(
            err,
            FpartError::BramSoftError {
                bram: "fill-rate",
                addr: 3
            }
        );
    }

    #[test]
    fn injected_pad_overflow_reports_chosen_point() {
        use fpart_hwsim::{Fault, FaultPlan};
        let r = rel(4096);
        let cfg = config(4, OutputMode::pad_default(), InputMode::Rid);
        let plan = FaultPlan::new().with(Fault::PadOverflow { consumed: 2048 });
        let p = FpgaPartitioner::new(cfg.clone()).with_faults(plan.clone());
        let err = p.partition(&r).unwrap_err();
        match err.clone() {
            FpartError::PartitionOverflow { consumed, .. } => {
                assert!(
                    consumed >= 2048,
                    "fires at the chosen point, got {consumed}"
                );
                assert!(consumed < 2048 + 64, "not much later either");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Same plan, same input → identical abort, cycle for cycle.
        let again = FpgaPartitioner::new(cfg).with_faults(plan);
        assert_eq!(again.partition(&r).unwrap_err(), err);
    }

    #[test]
    fn report_derivations() {
        let r = rel(4096);
        let cfg = config(5, OutputMode::pad_default(), InputMode::Rid);
        let p = FpgaPartitioner::new(cfg);
        let (_, report) = p.partition(&r).unwrap();
        assert!(report.seconds() > 0.0);
        assert!(report.mtuples_per_sec() > 0.0);
        assert!(report.link_gbps() > 0.0);
        assert_eq!(report.total_cycles(), report.scatter_cycles);
        assert!(report.translations > 0, "page table is exercised");
    }
}
