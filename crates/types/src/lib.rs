//! # fpart-types
//!
//! Foundation types shared by every crate in the `fpart` workspace, which
//! reproduces *"FPGA-based Data Partitioning"* (Kara, Giceva, Alonso,
//! SIGMOD 2017).
//!
//! The paper partitions relations of fixed-width `<key, payload>` tuples in
//! 64-byte cache-line granularity. This crate provides:
//!
//! * [`Tuple`] — the trait implemented by the four tuple widths the paper's
//!   circuit supports (8, 16, 32 and 64 bytes), plus the concrete types
//!   [`Tuple8`], [`Tuple16`], [`Tuple32`] and [`Tuple64`];
//! * [`Key`] — the key-word abstraction (`u32` for 8 B tuples, `u64`
//!   otherwise) including the *dummy key* sentinel the FPGA flush phase pads
//!   partially-filled cache lines with;
//! * [`Line`] — a 64-byte cache line of tuples, the unit in which the
//!   simulated circuit consumes and produces data;
//! * [`Relation`] / [`ColumnRelation`] — row-store and column-store input
//!   relations (the paper's RID and VRID operating modes);
//! * [`PartitionedRelation`] — the output layout of a partitioning run,
//!   covering both the exact (HIST) and padded (PAD) memory layouts;
//! * [`AlignedBuf`] — a 64-byte-aligned heap buffer used for all bulk tuple
//!   storage so that cache-line slicing never straddles an allocation.

#![warn(missing_docs)]

pub mod aligned;
pub mod error;
pub mod line;
pub mod partitioned;
pub mod relation;
pub mod rng;
pub mod tuple;

pub use aligned::AlignedBuf;
pub use error::{FpartError, Result};
pub use line::{Line, CACHE_LINE_BYTES};
pub use partitioned::{PartitionLayout, PartitionedRelation, SharedWriter};
pub use relation::{ColumnRelation, Relation};
pub use rng::SplitMix64;
pub use tuple::{Key, Tuple, Tuple16, Tuple32, Tuple64, Tuple8};
