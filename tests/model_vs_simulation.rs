//! The paper validates its analytical model against measurements within
//! 10 % (Section 4.8). This reproduction's equivalent: the Section 4.6
//! model against the cycle-level circuit simulation.
//!
//! Tolerances are slightly wider than the paper's for the bandwidth-bound
//! modes (the simulator models latency, warm-up and flush effects the
//! closed-form model deliberately ignores — the paper makes the same
//! remark about HIST/VRID vs PAD/RID).

use fpart::costmodel::{FpgaCostModel, ModePair};
use fpart::fpga::FpgaPartitioner;
use fpart::hwsim::QpiConfig;
use fpart::prelude::*;

const N: usize = 200_000;

fn run(mode: ModePair, raw: bool, bits: u32) -> f64 {
    let (output, input) = match mode {
        ModePair::HistRid => (OutputMode::Hist, InputMode::Rid),
        ModePair::HistVrid => (OutputMode::Hist, InputMode::Vrid),
        ModePair::PadRid => (OutputMode::pad_default(), InputMode::Rid),
        ModePair::PadVrid => (OutputMode::pad_default(), InputMode::Vrid),
    };
    let config = PartitionerConfig {
        partition_fn: PartitionFn::Murmur { bits },
        ..PartitionerConfig::paper_default(output, input)
    };
    let partitioner = if raw {
        FpgaPartitioner::with_qpi(
            config.clone(),
            QpiConfig::harp(fpart::memmodel::bandwidth::raw_wrapper_curve()),
        )
    } else {
        FpgaPartitioner::new(config.clone())
    };
    let keys = KeyDistribution::Random.generate_keys::<u32>(N, 5);
    let report = if input == InputMode::Vrid {
        let col = ColumnRelation::<Tuple8>::from_keys(&keys);
        partitioner.partition_columns(&col).unwrap().1
    } else {
        let rel = Relation::<Tuple8>::from_keys(&keys);
        partitioner.partition(&rel).unwrap().1
    };
    report.mtuples_per_sec()
}

fn model(mode: ModePair, raw: bool, bits: u32) -> f64 {
    let mut m = if raw {
        FpgaCostModel::raw_wrapper()
    } else {
        FpgaCostModel::paper()
    };
    m.partitions = 1 << bits;
    m.p_total(N as u64, 8, mode) / 1e6
}

fn assert_within(mode: ModePair, raw: bool, tolerance: f64) {
    // A modest fan-out keeps the flush latency term proportionate at the
    // test's N, like the paper's N = 128M at 8192 partitions.
    let bits = 8;
    let simulated = run(mode, raw, bits);
    let predicted = model(mode, raw, bits);
    let err = (simulated - predicted).abs() / predicted;
    assert!(
        err < tolerance,
        "{} (raw={raw}): simulated {simulated:.0} vs model {predicted:.0} Mtuples/s ({:.0}% off)",
        mode.label(),
        err * 100.0
    );
}

#[test]
fn hist_rid_matches_model() {
    assert_within(ModePair::HistRid, false, 0.15);
}

#[test]
fn pad_rid_matches_model() {
    assert_within(ModePair::PadRid, false, 0.15);
}

#[test]
fn hist_vrid_matches_model() {
    assert_within(ModePair::HistVrid, false, 0.15);
}

#[test]
fn pad_vrid_matches_model() {
    assert_within(ModePair::PadVrid, false, 0.15);
}

/// The raw-wrapper ceiling: the circuit must sustain ≈1 line/cycle.
#[test]
fn raw_pad_reaches_circuit_rate() {
    assert_within(ModePair::PadRid, true, 0.15);
}

#[test]
fn raw_hist_reaches_half_rate() {
    assert_within(ModePair::HistRid, true, 0.15);
}

/// Mode ordering matches Figure 9: HIST/RID < HIST/VRID ≈ PAD/RID <
/// PAD/VRID on the QPI link.
#[test]
fn figure9_mode_ordering() {
    let hist_rid = run(ModePair::HistRid, false, 8);
    let pad_rid = run(ModePair::PadRid, false, 8);
    let pad_vrid = run(ModePair::PadVrid, false, 8);
    assert!(
        hist_rid < pad_rid && pad_rid < pad_vrid,
        "ordering violated: {hist_rid:.0} / {pad_rid:.0} / {pad_vrid:.0}"
    );
}
