//! Figure 3: the distribution of tuples across 8192 partitions under
//! radix vs hash partitioning, for the four key distributions.
//!
//! The paper plots CDFs; a text harness summarises each CDF by its key
//! quantiles plus the empty-partition count and the maximum fill — enough
//! to see radix collapse on grid keys (a step-function CDF) while murmur
//! stays binomially tight for every distribution.

use fpart::prelude::*;

use crate::figures::common::relation;
use crate::table::TextTable;
use crate::Scale;

fn summarize(hist: &[usize]) -> (usize, usize, usize, usize, usize) {
    let mut sorted = hist.to_vec();
    sorted.sort_unstable();
    let q = |f: f64| sorted[((sorted.len() - 1) as f64 * f) as usize];
    let empty = sorted.iter().filter(|&&h| h == 0).count();
    (empty, q(0.25), q(0.5), q(0.75), *sorted.last().unwrap())
}

/// Generate the Figure 3 report.
pub fn run(scale: &Scale) -> Vec<TextTable> {
    let n = scale.n_128m();
    // Unlike the time-domain figures, the *shape* of Figure 3 depends on
    // the absolute partition-id bits (radix collapse happens because grid
    // key bytes only span 1..=128), so the fan-out stays at the paper's
    // 8192 even in scaled runs; only the mean fill shrinks.
    let bits = 13;
    let parts = 1usize << bits;
    let mean = n / parts;

    let mut t = TextTable::new(
        format!("Figure 3 — tuples per partition, {parts} partitions, {n} keys (mean fill {mean})"),
        &[
            "distribution",
            "method",
            "empty parts",
            "p25",
            "median",
            "p75",
            "max",
        ],
    );
    for dist in KeyDistribution::ALL {
        let rel = relation(n, dist, scale.seed);
        for f in [PartitionFn::Radix { bits }, PartitionFn::Murmur { bits }] {
            // Only the histogram is plotted — skip the scatter pass.
            let hist = CpuPartitioner::new(f, scale.host_threads).histogram_only(&rel);
            let (empty, p25, p50, p75, max) = summarize(&hist);
            t.row(vec![
                dist.label().into(),
                f.label().into(),
                empty.to_string(),
                p25.to_string(),
                p50.to_string(),
                p75.to_string(),
                max.to_string(),
            ]);
        }
    }
    t.note("paper (Fig. 3a): radix leaves grid/rev-grid partitions wildly unbalanced (CDF steps)");
    t.note("paper (Fig. 3b): murmur gives every distribution \"more or less the same number of tuples\"");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_collapses_grid_murmur_does_not() {
        let scale = Scale {
            fraction: 1.0 / 512.0,
            host_threads: 2,
            seed: 1,
        };
        let out = crate::table::render_tables(&run(&scale));
        // Extract grid rows: radix must have many empty partitions,
        // murmur none (binomial fill at mean >> 0).
        let lines: Vec<&str> = out.lines().collect();
        let grid_radix = lines
            .iter()
            .find(|l| l.trim_start().starts_with("grid") && l.contains("radix"))
            .expect("grid/radix row");
        let grid_murmur = lines
            .iter()
            .find(|l| l.trim_start().starts_with("grid") && l.contains("murmur"))
            .expect("grid/murmur row");
        let empty = |line: &str| {
            line.split_whitespace()
                .nth(2)
                .unwrap()
                .parse::<usize>()
                .unwrap()
        };
        assert!(empty(grid_radix) > 0, "radix on grid: {grid_radix}");
        assert_eq!(empty(grid_murmur), 0, "murmur on grid: {grid_murmur}");
    }
}
