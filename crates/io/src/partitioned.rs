//! Persistence for partitioned relations (`FPRP` format).
//!
//! A partitioning run is the expensive half of a radix join; persisting
//! its output lets a pipeline split partition and join across processes
//! (or cache the partitioning of a build side that joins against many
//! probe sides).
//!
//! ```text
//! offset        size  field
//! 0             4     magic "FPRP"
//! 4             2     version (1)
//! 6             2     tuple width
//! 8             8     partition count P
//! 16            8     allocated slot count A
//! 24            16·P  per partition: written (u64), valid (u64)
//! …             8·(P+1) slot offsets (prefix table)
//! …             A·w   raw slot bytes (including dummy padding)
//! …             8     FNV-1a checksum of the slot bytes
//! ```
//!
//! The exact layout (offsets, written/valid counts, dummy padding) is
//! preserved bit-for-bit, so a reloaded relation behaves identically —
//! including the flush-padding the FPGA wrote.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use fpart_types::{PartitionedRelation, Tuple};

use crate::IoError;

const MAGIC: &[u8; 4] = b"FPRP";
const VERSION: u16 = 1;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Write a partitioned relation to `path`.
pub fn write_partitioned<T: Tuple>(
    rel: &PartitionedRelation<T>,
    path: impl AsRef<Path>,
) -> Result<(), IoError> {
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&(T::WIDTH as u16).to_le_bytes())?;
    let parts = rel.num_partitions() as u64;
    out.write_all(&parts.to_le_bytes())?;
    out.write_all(&(rel.allocated_slots() as u64).to_le_bytes())?;
    for p in 0..rel.num_partitions() {
        out.write_all(&(rel.partition_written(p) as u64).to_le_bytes())?;
        out.write_all(&(rel.partition_valid(p) as u64).to_le_bytes())?;
    }
    for p in 0..rel.num_partitions() {
        out.write_all(&(rel.partition_base(p) as u64).to_le_bytes())?;
    }
    out.write_all(&(rel.allocated_slots() as u64).to_le_bytes())?;
    // SAFETY: T is plain-old-data (see `binary::as_bytes`).
    let bytes = unsafe {
        std::slice::from_raw_parts(
            rel.raw_data().as_ptr().cast::<u8>(),
            std::mem::size_of_val(rel.raw_data()),
        )
    };
    out.write_all(bytes)?;
    out.write_all(&fnv1a(bytes).to_le_bytes())?;
    out.flush()?;
    Ok(())
}

/// Read a partitioned relation of tuple type `T` from `path`.
pub fn read_partitioned<T: Tuple>(
    path: impl AsRef<Path>,
) -> Result<PartitionedRelation<T>, IoError> {
    let mut input = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(IoError::BadMagic);
    }
    let mut b2 = [0u8; 2];
    input.read_exact(&mut b2)?;
    let version = u16::from_le_bytes(b2);
    if version != VERSION {
        return Err(IoError::BadVersion(version));
    }
    input.read_exact(&mut b2)?;
    let width = u16::from_le_bytes(b2);
    if width as usize != T::WIDTH {
        return Err(IoError::WidthMismatch {
            file: width,
            requested: T::WIDTH as u16,
        });
    }
    let mut b8 = [0u8; 8];
    input.read_exact(&mut b8)?;
    let parts = u64::from_le_bytes(b8) as usize;
    input.read_exact(&mut b8)?;
    let allocated = u64::from_le_bytes(b8) as usize;

    let mut fills = Vec::with_capacity(parts);
    for _ in 0..parts {
        input.read_exact(&mut b8)?;
        let written = u64::from_le_bytes(b8) as usize;
        input.read_exact(&mut b8)?;
        let valid = u64::from_le_bytes(b8) as usize;
        fills.push((written, valid));
    }
    let mut offsets = Vec::with_capacity(parts + 1);
    for _ in 0..=parts {
        input.read_exact(&mut b8)?;
        offsets.push(u64::from_le_bytes(b8) as usize);
    }
    if offsets.last().copied() != Some(allocated) {
        return Err(IoError::ChecksumMismatch);
    }

    let mut payload = vec![0u8; allocated * T::WIDTH];
    input.read_exact(&mut payload)?;
    input.read_exact(&mut b8)?;
    if u64::from_le_bytes(b8) != fnv1a(&payload) {
        return Err(IoError::ChecksumMismatch);
    }

    // Rebuild: extents from the offset table, data from the payload.
    let extents: Vec<usize> = offsets.windows(2).map(|w| w[1] - w[0]).collect();
    let mut rel = PartitionedRelation::<T>::with_histogram(&extents, false);
    debug_assert_eq!(rel.allocated_slots(), allocated);
    if allocated > 0 {
        // SAFETY: destination holds exactly `allocated` T slots =
        // payload.len() bytes; T is plain-old-data.
        unsafe {
            std::ptr::copy_nonoverlapping(
                payload.as_ptr(),
                rel.raw_data_mut().as_mut_ptr().cast::<u8>(),
                payload.len(),
            );
        }
    }
    for (p, (written, valid)) in fills.into_iter().enumerate() {
        rel.set_partition_fill(p, written, valid);
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_datagen::KeyDistribution;
    use fpart_types::{Relation, Tuple8};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fpart_fprp_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn cpu_partitioned_round_trip() {
        use fpart_cpu_shim::partition;
        let path = tmp("cpu");
        let keys = KeyDistribution::Random.generate_keys::<u32>(8000, 3);
        let rel = Relation::<Tuple8>::from_keys(&keys);
        let parts = partition(&rel);
        write_partitioned(&parts, &path).unwrap();
        let back = read_partitioned::<Tuple8>(&path).unwrap();

        assert_eq!(back.num_partitions(), parts.num_partitions());
        assert_eq!(back.histogram(), parts.histogram());
        assert_eq!(back.raw_data(), parts.raw_data());
        for p in 0..parts.num_partitions() {
            assert_eq!(back.partition_written(p), parts.partition_written(p));
            assert_eq!(back.partition_base(p), parts.partition_base(p));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_detected() {
        use fpart_cpu_shim::partition;
        let path = tmp("corrupt");
        let rel = Relation::<Tuple8>::from_keys(&(0..500u32).collect::<Vec<_>>());
        write_partitioned(&partition(&rel), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_partitioned::<Tuple8>(&path),
            Err(IoError::ChecksumMismatch)
        ));
        std::fs::remove_file(&path).ok();
    }

    /// Minimal in-test partitioner (fpart-io must not depend on
    /// fpart-cpu, which would create a cycle if fpart-cpu ever persists).
    mod fpart_cpu_shim {
        use fpart_types::{PartitionedRelation, Relation, Tuple8};

        pub fn partition(rel: &Relation<Tuple8>) -> PartitionedRelation<Tuple8> {
            let parts = 32usize;
            let mut hist = vec![0usize; parts];
            for t in rel.tuples() {
                hist[(t.key % parts as u32) as usize] += 1;
            }
            let mut out = PartitionedRelation::<Tuple8>::with_histogram(&hist, false);
            let mut cursors: Vec<usize> = (0..parts).map(|p| out.partition_base(p)).collect();
            for &t in rel.tuples() {
                let p = (t.key % parts as u32) as usize;
                out.raw_data_mut()[cursors[p]] = t;
                cursors[p] += 1;
            }
            for (p, &h) in hist.iter().enumerate() {
                out.set_partition_fill(p, h, h);
            }
            out
        }
    }
}
