/root/repo/target/debug/deps/props-ab6b3d41a97166e2.d: crates/hwsim/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-ab6b3d41a97166e2.rmeta: crates/hwsim/tests/props.rs Cargo.toml

crates/hwsim/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
