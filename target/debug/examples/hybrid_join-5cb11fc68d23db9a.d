/root/repo/target/debug/examples/hybrid_join-5cb11fc68d23db9a.d: crates/core/../../examples/hybrid_join.rs

/root/repo/target/debug/examples/hybrid_join-5cb11fc68d23db9a: crates/core/../../examples/hybrid_join.rs

crates/core/../../examples/hybrid_join.rs:
