//! Non-temporal (streaming) stores.
//!
//! Wassenberg & Sanders' improvement to write-combining partitioning
//! (Section 3.1): flush the software buffers "directly to their
//! destinations in the memory, bypassing the caches. That way the
//! corresponding cache-lines do not need to be fetched and the pollution
//! of caches is avoided."
//!
//! On x86-64 we use `_mm_stream_si64` (SSE2, baseline for the
//! architecture); elsewhere the copy degrades to a normal `memcpy`, which
//! keeps the algorithm portable (the throughput difference is what the
//! `ablation_swwcb` bench measures).

use fpart_types::Tuple;

/// Whether real streaming stores are available on this build target.
pub const NT_STORES_AVAILABLE: bool = cfg!(target_arch = "x86_64");

/// Copy `src` to `dst` with non-temporal stores when available.
///
/// # Safety
/// `dst` must be valid for `src.len()` writes, 8-byte aligned, and the
/// destination must not overlap `src`. The tuple width must be a multiple
/// of 8 bytes (all fpart tuples are).
#[inline]
pub unsafe fn nt_copy<T: Tuple>(dst: *mut T, src: &[T]) {
    #[cfg(target_arch = "x86_64")]
    {
        debug_assert_eq!(T::WIDTH % 8, 0);
        debug_assert_eq!(dst as usize % 8, 0, "destination must be 8-byte aligned");
        let words = src.len() * (T::WIDTH / 8);
        let src_w = src.as_ptr().cast::<i64>();
        let dst_w = dst.cast::<i64>();
        // SAFETY: caller guarantees validity/alignment; we reinterpret the
        // POD tuples as i64 words.
        unsafe {
            for i in 0..words {
                core::arch::x86_64::_mm_stream_si64(dst_w.add(i), src_w.add(i).read());
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // SAFETY: caller guarantees validity and non-overlap.
        unsafe { std::ptr::copy_nonoverlapping(src.as_ptr(), dst, src.len()) };
    }
}

/// Order all outstanding streaming stores before subsequent loads. Call
/// once after a partitioning pass that used [`nt_copy`].
#[inline]
pub fn store_fence() {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_sfence` has no preconditions.
    unsafe {
        core::arch::x86_64::_mm_sfence()
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_types::{AlignedBuf, Tuple16, Tuple8};

    #[test]
    fn nt_copy_matches_plain_copy() {
        let src: Vec<Tuple8> = (0..64).map(|i| Tuple8::new(i, i as u64)).collect();
        let mut dst = AlignedBuf::<Tuple8>::zeroed(64);
        // SAFETY: dst sized and aligned, disjoint from src.
        unsafe { nt_copy(dst.as_mut_slice().as_mut_ptr(), &src) };
        store_fence();
        assert_eq!(dst.as_slice(), &src[..]);
    }

    #[test]
    fn nt_copy_partial_and_offset() {
        let src: Vec<Tuple16> = (0..8).map(|i| Tuple16::new(i, i)).collect();
        let mut dst = AlignedBuf::<Tuple16>::zeroed(16);
        // SAFETY: offset 4 is within bounds; 16 B tuples stay 8-aligned.
        unsafe { nt_copy(dst.as_mut_slice().as_mut_ptr().add(4), &src[..3]) };
        store_fence();
        assert_eq!(dst[4], Tuple16::new(0, 0));
        assert_eq!(dst[6], Tuple16::new(2, 2));
        assert_eq!(dst[7], Tuple16::new(0, 0), "untouched");
    }
}
