/root/repo/target/debug/deps/fpart-a6d086506177569c.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libfpart-a6d086506177569c.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
