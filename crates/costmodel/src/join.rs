//! Calibrated model of the build+probe phase and full-join compositions.
//!
//! Calibration anchors:
//! * Section 5.2: 10-thread CPU join on workload A at 8192 partitions runs
//!   at 436 M tuples/s over |R|+|S| = 256 M ⇒ 0.587 s total; partitioning
//!   both relations at 506 M tuples/s takes 0.506 s, leaving ≈0.08 s for
//!   build+probe ⇒ ≈9 cycles/tuple at 2.8 GHz × 10 threads. We split that
//!   as 10 build + 8 probe cycles.
//! * Figure 10: shrinking the partition count below the cache-fitting
//!   point inflates build+probe — modelled as a logarithmic penalty in
//!   how far a partition overshoots the effective cache budget.
//! * Table 1 / Section 2.2: after FPGA partitioning, CPU reads of the
//!   partitions are snooped on the FPGA socket. The probe phase's random
//!   access bears the 2.16× random-read multiplier on its memory-bound
//!   share; the build's sequential scan bears 1.11×. With roughly half
//!   the probe cycles being memory stalls, the net effect is the ≈1.3–1.6×
//!   build+probe inflation visible in Figures 10–12.
//! * Figure 13: a Zipf-skewed probe relation concentrates work in few
//!   partitions; threads cannot split one partition, so the phase time is
//!   `max(even share, heaviest partition)`.

use fpart_memmodel::{CoherencePenalty, PlatformSpec};

/// Build+probe cycle costs and cache-fit modelling.
#[derive(Debug, Clone)]
pub struct JoinCostModel {
    /// Platform constants.
    pub platform: PlatformSpec,
    /// Cycles per build tuple when the partition fits in cache.
    pub build_cycles: f64,
    /// Cycles per probe tuple when the partition fits in cache.
    pub probe_cycles: f64,
    /// Fraction of probe cycles that are memory stalls (exposed to the
    /// coherence penalty).
    pub probe_mem_fraction: f64,
    /// Fraction of build cycles that are memory stalls.
    pub build_mem_fraction: f64,
    /// Effective per-core cache budget a partition should fit into
    /// (≈ L2 + L3 share of the 10-core Xeon).
    pub cache_budget_bytes: f64,
}

impl JoinCostModel {
    /// The paper's Xeon, calibrated per the module header.
    pub fn paper() -> Self {
        Self {
            platform: PlatformSpec::harp_v1(),
            build_cycles: 10.0,
            probe_cycles: 8.0,
            probe_mem_fraction: 0.5,
            build_mem_fraction: 0.3,
            // Between L2 (256 KB) and the per-core L3 share; set so that
            // workload A's 125 KB partitions fit cleanly (penalty 1 at
            // 8192 partitions) while the 2× partitions radix leaves on
            // grid keys (workload D) pay the ≈11 % the paper measures.
            cache_budget_bytes: 192.0 * 1024.0,
        }
    }

    /// Cache-overshoot multiplier for a partition of `partition_bytes`.
    pub fn cache_penalty(&self, partition_bytes: f64) -> f64 {
        if partition_bytes <= self.cache_budget_bytes {
            1.0
        } else {
            1.0 + 0.35 * (partition_bytes / self.cache_budget_bytes).log2()
        }
    }

    /// Coherence multipliers applied to the memory-bound share when the
    /// partitions were written by the FPGA socket: `(build, probe)`.
    pub fn coherence_multipliers(&self) -> (f64, f64) {
        let p = CoherencePenalty::TABLE1;
        let build = 1.0 + self.build_mem_fraction * (p.sequential_multiplier() - 1.0);
        let probe = 1.0 + self.probe_mem_fraction * (p.random_multiplier() - 1.0);
        (build, probe)
    }

    /// Build+probe seconds for uniform partitions.
    ///
    /// `fpga_partitioned` applies the Section 2.2 coherence penalty.
    pub fn build_probe_seconds(
        &self,
        r_tuples: u64,
        s_tuples: u64,
        partitions: usize,
        tuple_width: usize,
        threads: usize,
        fpga_partitioned: bool,
    ) -> f64 {
        let part_bytes = (r_tuples as f64 / partitions as f64) * tuple_width as f64;
        let penalty = self.cache_penalty(part_bytes);
        let (build_coh, probe_coh) = if fpga_partitioned {
            self.coherence_multipliers()
        } else {
            (1.0, 1.0)
        };
        let cycles = r_tuples as f64 * self.build_cycles * penalty * build_coh
            + s_tuples as f64 * self.probe_cycles * penalty * probe_coh;
        cycles / (self.platform.cpu_hz * threads as f64)
    }

    /// Build+probe seconds from explicit per-partition loads (used for
    /// skew: Figure 13). Thread-level parallelism cannot split a
    /// partition, so the wall time is `max(total/threads, heaviest)`.
    pub fn build_probe_seconds_skewed(
        &self,
        r_hist: &[u64],
        s_hist: &[u64],
        tuple_width: usize,
        threads: usize,
        fpga_partitioned: bool,
    ) -> f64 {
        assert_eq!(r_hist.len(), s_hist.len());
        let (build_coh, probe_coh) = if fpga_partitioned {
            self.coherence_multipliers()
        } else {
            (1.0, 1.0)
        };
        let mut total = 0.0f64;
        let mut heaviest = 0.0f64;
        for (&r, &s) in r_hist.iter().zip(s_hist) {
            let part_bytes = r as f64 * tuple_width as f64;
            let penalty = self.cache_penalty(part_bytes);
            let cycles = r as f64 * self.build_cycles * penalty * build_coh
                + s as f64 * self.probe_cycles * penalty * probe_coh;
            total += cycles;
            heaviest = heaviest.max(cycles);
        }
        (total / threads as f64).max(heaviest) / self.platform.cpu_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: u64 = 128_000_000;
    const S: u64 = 128_000_000;

    /// The Section 5.2 anchor: CPU join ≈ 436 M tuples/s at 10 threads /
    /// 8192 partitions (partitioning 0.506 s + build+probe ≈ 0.082 s).
    #[test]
    fn workload_a_total_matches_section_5_2() {
        let m = JoinCostModel::paper();
        let bp = m.build_probe_seconds(R, S, 8192, 8, 10, false);
        assert!((bp - 0.082).abs() < 0.01, "build+probe {bp:.3}s");
        let partition = (R + S) as f64 / 506e6;
        let total = partition + bp;
        let throughput = (R + S) as f64 / total / 1e6;
        assert!(
            (throughput - 436.0).abs() < 10.0,
            "{throughput:.0} Mtuples/s"
        );
    }

    /// Figure 10's shape: fewer partitions → slower build+probe; at 8192
    /// the partition fits the cache budget and the penalty is 1.
    #[test]
    fn partition_count_effect() {
        let m = JoinCostModel::paper();
        // 128 M × 8 B / 8192 = 125 KB < 256 KB budget.
        assert_eq!(m.cache_penalty(R as f64 * 8.0 / 8192.0), 1.0);
        let mut prev = f64::INFINITY;
        for parts in [256usize, 512, 1024, 2048, 4096, 8192] {
            let bp = m.build_probe_seconds(R, S, parts, 8, 1, false);
            // Non-increasing; flat once partitions fit the cache budget
            // (both 4096 and 8192 fit for workload A).
            assert!(bp <= prev, "more partitions must not slow build+probe");
            prev = bp;
        }
        // 256 partitions: 4 MB partitions, penalty ≈ 2.5.
        let penalty = m.cache_penalty(4.0 * 1024.0 * 1024.0);
        assert!((penalty - 2.54).abs() < 0.1, "{penalty}");
    }

    /// The hybrid join's build+probe is visibly slower (Figures 10–12).
    #[test]
    fn coherence_penalty_inflates_hybrid_build_probe() {
        let m = JoinCostModel::paper();
        let cpu = m.build_probe_seconds(R, S, 8192, 8, 10, false);
        let hybrid = m.build_probe_seconds(R, S, 8192, 8, 10, true);
        let ratio = hybrid / cpu;
        assert!(
            (1.25..1.6).contains(&ratio),
            "hybrid/CPU build+probe ratio {ratio:.2}"
        );
        let (b, p) = m.coherence_multipliers();
        assert!((b - 1.033).abs() < 0.01);
        assert!((p - 1.578).abs() < 0.01);
    }

    /// Skew model: a single dominant partition caps thread scaling.
    #[test]
    fn skew_limits_parallelism() {
        let m = JoinCostModel::paper();
        let balanced = vec![1000u64; 64];
        let t_bal = m.build_probe_seconds_skewed(&balanced, &balanced, 8, 8, false);
        let mut skewed = vec![100u64; 64];
        skewed[0] = 57_600; // same total probe volume, one hot partition
        let t_skew = m.build_probe_seconds_skewed(&balanced, &skewed, 8, 8, false);
        assert!(
            t_skew > 3.0 * t_bal,
            "hot partition should dominate: {t_skew:.2e} vs {t_bal:.2e}"
        );
    }

    #[test]
    fn threads_divide_balanced_work() {
        let m = JoinCostModel::paper();
        let t1 = m.build_probe_seconds(R, S, 8192, 8, 1, false);
        let t10 = m.build_probe_seconds(R, S, 8192, 8, 10, false);
        assert!((t1 / t10 - 10.0).abs() < 1e-6);
    }
}
