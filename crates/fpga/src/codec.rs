//! Compressed key columns, decompressed on chip.
//!
//! The paper's Discussion: "when processing compressed columns (a de
//! facto standard for analytical workloads), decompression and
//! compression can be done for free on the FPGA as the first and the
//! last steps of a processing pipeline."
//!
//! This module provides the *first step* for the VRID partitioning path:
//! the key column is stored run-length encoded; the circuit reads the
//! (smaller) compressed column over QPI and per-lane run expanders
//! regenerate keys at the full one-line-per-cycle internal rate. Runs
//! are capped at the lane count so a line of runs expands to a bounded
//! number of tuple lines — the property that keeps the read-throttling
//! flow control of Section 4.3 intact.

use fpart_types::Key;

/// Maximum run length per encoded entry; longer runs are split. Equal to
/// the 8 B-tuple lane count so one run never expands past one cache line
/// of tuples.
pub const MAX_RUN: u8 = 8;

/// A run-length-encoded key column: `(key, run_length)` entries with
/// `1 <= run_length <= MAX_RUN`.
///
/// # Examples
///
/// ```
/// use fpart_fpga::codec::RleColumn;
///
/// let col = RleColumn::encode(&[5u32, 5, 5, 9]);
/// assert_eq!(col.runs(), &[(5, 3), (9, 1)]);
/// assert_eq!(col.decode(), vec![5, 5, 5, 9]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleColumn<K: Key> {
    runs: Vec<(K, u8)>,
    decoded_len: usize,
}

impl<K: Key> RleColumn<K> {
    /// Encode a key column. Adjacent equal keys collapse into runs
    /// (capped at [`MAX_RUN`]); sorted or low-cardinality columns
    /// compress well, random columns degenerate to run length 1.
    pub fn encode(keys: &[K]) -> Self {
        let mut runs: Vec<(K, u8)> = Vec::new();
        for &k in keys {
            match runs.last_mut() {
                Some((last, len)) if *last == k && *len < MAX_RUN => *len += 1,
                _ => runs.push((k, 1)),
            }
        }
        Self {
            runs,
            decoded_len: keys.len(),
        }
    }

    /// The encoded runs.
    pub fn runs(&self) -> &[(K, u8)] {
        &self.runs
    }

    /// Keys after decompression.
    pub fn decoded_len(&self) -> usize {
        self.decoded_len
    }

    /// Encoded size in bytes as stored for the circuit: each run packs
    /// the key word plus a length byte rounded to the key width (the
    /// hardware layout keeps entries word-aligned).
    pub fn encoded_bytes(&self) -> usize {
        self.runs.len() * 2 * std::mem::size_of::<K>()
    }

    /// Compression ratio: decoded key bytes / encoded bytes.
    pub fn ratio(&self) -> f64 {
        if self.runs.is_empty() {
            return 1.0;
        }
        (self.decoded_len * std::mem::size_of::<K>()) as f64 / self.encoded_bytes() as f64
    }

    /// Decode back to the full key column (software reference; the
    /// circuit does this on chip).
    pub fn decode(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.decoded_len);
        for &(k, len) in &self.runs {
            for _ in 0..len {
                out.push(k);
            }
        }
        debug_assert_eq!(out.len(), self.decoded_len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let keys: Vec<u32> = vec![1, 1, 1, 2, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 4];
        let col = RleColumn::encode(&keys);
        assert_eq!(col.decode(), keys);
        // 3 repeats 10 times → split into 8 + 2.
        assert_eq!(col.runs(), &[(1, 3), (2, 1), (3, 8), (3, 2), (4, 1)]);
        assert_eq!(col.decoded_len(), 15);
    }

    #[test]
    fn sorted_low_cardinality_compresses() {
        // 10k keys over 100 distinct values, sorted: long runs.
        let mut keys: Vec<u32> = (0..10_000).map(|i| i % 100).collect();
        keys.sort_unstable();
        let col = RleColumn::encode(&keys);
        assert!(col.ratio() > 3.5, "ratio {:.2}", col.ratio());
        assert_eq!(col.decode(), keys);
    }

    #[test]
    fn random_keys_do_not_compress() {
        let keys: Vec<u32> = (0..1000u32)
            .map(|i| i.wrapping_mul(2654435761) % 97 + i)
            .collect();
        let col = RleColumn::encode(&keys);
        assert!(col.ratio() <= 0.51, "ratio {:.2}", col.ratio());
        assert_eq!(col.decode(), keys);
    }

    #[test]
    fn empty_column() {
        let col = RleColumn::<u32>::encode(&[]);
        assert!(col.decode().is_empty());
        assert_eq!(col.ratio(), 1.0);
    }

    #[test]
    fn run_cap_is_respected() {
        let keys = vec![7u32; 100];
        let col = RleColumn::encode(&keys);
        assert!(col
            .runs()
            .iter()
            .all(|&(_, len)| (1..=MAX_RUN).contains(&len)));
        assert_eq!(col.runs().len(), 13); // ⌈100/8⌉
    }
}
